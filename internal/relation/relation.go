package relation

import (
	"fmt"
	"strings"
	"sync/atomic"
)

// Tuple is one row of a relation. Its length and value kinds must match
// the relation's schema.
type Tuple []Value

// Clone returns an independent copy of the tuple.
func (t Tuple) Clone() Tuple { return append(Tuple(nil), t...) }

// Key returns a map key identifying the tuple's values, for duplicate
// elimination and hash joins.
func (t Tuple) Key() string {
	var b strings.Builder
	for _, v := range t {
		b.WriteString(v.Key())
		b.WriteByte('\x1f')
	}
	return b.String()
}

// String renders the tuple as "(v1, v2, ...)".
func (t Tuple) String() string {
	parts := make([]string, len(t))
	for i, v := range t {
		parts[i] = v.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// Relation is a named multiset of tuples over a schema. Any number of
// goroutines may read a Relation concurrently; mutation requires
// exclusive access (the induction pipeline treats catalog relations and
// materialised joins as immutable while workers run). Shallow copies
// made by WithName and RenameColumns stay consistent under subsequent
// single-writer mutation of either side: slices are clipped, deletes
// rebuild, and cell updates copy-on-write.
type Relation struct {
	name    string
	schema  *Schema
	rows    []Tuple
	version uint64      // bumped on every mutation; indexes snapshot it
	shared  atomic.Bool // rows' backing array may be aliased by a view
}

// New creates an empty relation with the given name and schema.
func New(name string, schema *Schema) *Relation {
	return &Relation{name: name, schema: schema}
}

// FromRows builds a relation directly over an existing row slice,
// skipping per-row conformance checks — the adoption path the streaming
// executor uses to publish pipeline output without re-validating rows a
// typed operator tree produced by construction. The caller transfers
// ownership of rows and guarantees every tuple matches the schema.
func FromRows(name string, schema *Schema, rows []Tuple) *Relation {
	return &Relation{name: name, schema: schema, rows: rows}
}

// Name returns the relation's name.
func (r *Relation) Name() string { return r.name }

// Schema returns the relation's schema.
func (r *Relation) Schema() *Schema { return r.schema }

// Len returns the number of tuples.
func (r *Relation) Len() int { return len(r.rows) }

// Rows returns the underlying tuple slice. Callers must not mutate it.
func (r *Relation) Rows() []Tuple { return r.rows }

// Version identifies the relation's mutation state; it changes on every
// insert, delete, or update, invalidating indexes built earlier.
func (r *Relation) Version() uint64 { return r.version }

// Row returns the i-th tuple.
func (r *Relation) Row(i int) Tuple { return r.rows[i] }

// WithName returns a shallow copy of the relation under a new name. The
// copy shares tuples with r but owns its row slice: subsequent inserts or
// deletes on either relation never become visible through the other.
func (r *Relation) WithName(name string) *Relation {
	out := &Relation{name: name, schema: r.schema, rows: r.sharedRows()}
	out.shared.Store(true)
	return out
}

// RenameColumns returns a shallow copy (tuples shared) whose column names
// are passed through f — used to qualify columns before multi-way joins.
// As with WithName, the copy's row slice is independent of r's.
func (r *Relation) RenameColumns(f func(string) string) (*Relation, error) {
	schema, err := r.schema.Rename(f)
	if err != nil {
		return nil, fmt.Errorf("relation %s: %w", r.name, err)
	}
	out := &Relation{name: r.name, schema: schema, rows: r.sharedRows()}
	out.shared.Store(true)
	return out, nil
}

// sharedRows returns r's row slice clipped to its length, so a shallow
// copy built on it cannot have its backing array overwritten by a later
// append to r (and vice versa) — appends past the clip always reallocate.
// Both sides are marked shared so in-place writes (Set) know to detach
// first. The view Relation is expected to set its own shared flag.
func (r *Relation) sharedRows() []Tuple {
	r.shared.Store(true)
	return r.rows[:len(r.rows):len(r.rows)]
}

// detach gives r a private copy of its row slice if a view may alias the
// backing array, so element writes cannot leak into shallow copies.
func (r *Relation) detach() {
	if !r.shared.Load() {
		return
	}
	r.rows = append(make([]Tuple, 0, len(r.rows)), r.rows...)
	r.shared.Store(false)
}

// Insert appends a tuple after checking arity and type conformance.
func (r *Relation) Insert(t Tuple) error {
	if len(t) != r.schema.Len() {
		return fmt.Errorf("relation %s: arity mismatch: tuple has %d values, schema %d columns",
			r.name, len(t), r.schema.Len())
	}
	for i, v := range t {
		if !v.Conforms(r.schema.Col(i).Type) {
			return fmt.Errorf("relation %s: value %#v does not conform to column %s %s",
				r.name, v, r.schema.Col(i).Name, r.schema.Col(i).Type)
		}
	}
	r.rows = append(r.rows, t)
	r.version++
	return nil
}

// MustInsert inserts a tuple built from the given values, panicking on a
// schema violation. Intended for statically known test-bed data.
func (r *Relation) MustInsert(vals ...Value) {
	if err := r.Insert(Tuple(vals)); err != nil {
		panic(err)
	}
}

// InsertStrings parses one string per column and inserts the tuple.
func (r *Relation) InsertStrings(fields ...string) error {
	if len(fields) != r.schema.Len() {
		return fmt.Errorf("relation %s: arity mismatch: %d fields, schema %d columns",
			r.name, len(fields), r.schema.Len())
	}
	t := make(Tuple, len(fields))
	for i, f := range fields {
		v, err := ParseValue(f, r.schema.Col(i).Type)
		if err != nil {
			return fmt.Errorf("relation %s column %s: %w", r.name, r.schema.Col(i).Name, err)
		}
		t[i] = v
	}
	r.rows = append(r.rows, t)
	r.version++
	return nil
}

// Set replaces the value at row i, column c, after checking type
// conformance — the mutation primitive behind QUEL's replace. The row is
// replaced copy-on-write: tuples handed out earlier (Select outputs,
// WithName/RenameColumns views, Rows callers) keep their old values
// rather than observing in-place mutation.
func (r *Relation) Set(i, c int, v Value) error {
	if i < 0 || i >= len(r.rows) {
		return fmt.Errorf("relation %s: row %d out of range", r.name, i)
	}
	if c < 0 || c >= r.schema.Len() {
		return fmt.Errorf("relation %s: column %d out of range", r.name, c)
	}
	if !v.Conforms(r.schema.Col(c).Type) {
		return fmt.Errorf("relation %s: value %#v does not conform to column %s %s",
			r.name, v, r.schema.Col(c).Name, r.schema.Col(c).Type)
	}
	r.detach()
	row := r.rows[i].Clone()
	row[c] = v
	r.rows[i] = row
	r.version++
	return nil
}

// Clone returns a deep copy of the relation (schema shared, rows copied).
func (r *Relation) Clone() *Relation {
	rows := make([]Tuple, len(r.rows))
	for i, t := range r.rows {
		rows[i] = t.Clone()
	}
	return &Relation{name: r.name, schema: r.schema, rows: rows}
}

// Column returns all values of the named column in row order.
func (r *Relation) Column(name string) ([]Value, error) {
	i, ok := r.schema.Index(name)
	if !ok {
		return nil, fmt.Errorf("relation %s: no column %q", r.name, name)
	}
	out := make([]Value, len(r.rows))
	for j, t := range r.rows {
		out[j] = t[i]
	}
	return out, nil
}

// String renders the relation as an aligned text table, the format the
// command-line tools print extensional answers in.
func (r *Relation) String() string {
	names := r.schema.Names()
	widths := make([]int, len(names))
	for i, n := range names {
		widths[i] = len(n)
	}
	cells := make([][]string, len(r.rows))
	for j, t := range r.rows {
		row := make([]string, len(t))
		for i, v := range t {
			row[i] = v.String()
			if len(row[i]) > widths[i] {
				widths[i] = len(row[i])
			}
		}
		cells[j] = row
	}
	var b strings.Builder
	writeRow := func(row []string) {
		b.WriteByte('|')
		for i, c := range row {
			fmt.Fprintf(&b, " %-*s |", widths[i], c)
		}
		b.WriteByte('\n')
	}
	sep := func() {
		b.WriteByte('+')
		for _, w := range widths {
			b.WriteString(strings.Repeat("-", w+2))
			b.WriteByte('+')
		}
		b.WriteByte('\n')
	}
	sep()
	writeRow(names)
	sep()
	for _, row := range cells {
		writeRow(row)
	}
	sep()
	return b.String()
}
