package relation

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func indexedRelation(t *testing.T) *Relation {
	t.Helper()
	r := New("R", MustSchema(
		Column{Name: "K", Type: TInt},
		Column{Name: "S", Type: TString},
	))
	for _, k := range []int64{5, 1, 9, 3, 5, 7} {
		r.MustInsert(Int(k), String("x"))
	}
	r.MustInsert(Null(), String("n")) // nulls are not indexed
	return r
}

func TestIndexLookupOperators(t *testing.T) {
	r := indexedRelation(t)
	ix, err := r.BuildIndex("K")
	if err != nil {
		t.Fatal(err)
	}
	if ix.Len() != 6 {
		t.Fatalf("indexed rows = %d, want 6 (null excluded)", ix.Len())
	}
	cases := []struct {
		op   string
		v    int64
		want int
	}{
		{"=", 5, 2}, {"=", 4, 0},
		{"<", 5, 2}, {"<=", 5, 4},
		{">", 5, 2}, {">=", 5, 4},
		{"!=", 5, 4},
	}
	for _, c := range cases {
		rows, err := ix.Lookup(c.op, Int(c.v))
		if err != nil {
			t.Fatalf("Lookup(%s %d): %v", c.op, c.v, err)
		}
		if len(rows) != c.want {
			t.Errorf("Lookup(%s %d) = %d rows, want %d", c.op, c.v, len(rows), c.want)
		}
		for _, pos := range rows {
			if r.Row(pos)[0].IsNull() {
				t.Errorf("Lookup(%s %d) returned a null row", c.op, c.v)
			}
		}
	}
	if _, err := ix.Lookup("~", Int(1)); err == nil {
		t.Error("unsupported operator should error")
	}
	if _, err := ix.Lookup("=", String("x")); err == nil {
		t.Error("incomparable value should error")
	}
}

func TestIndexStaleness(t *testing.T) {
	r := indexedRelation(t)
	ix, err := r.BuildIndex("K")
	if err != nil {
		t.Fatal(err)
	}
	if !ix.Fresh() {
		t.Fatal("fresh index reported stale")
	}
	r.MustInsert(Int(2), String("y"))
	if ix.Fresh() {
		t.Error("index should be stale after insert")
	}
	if _, err := ix.Lookup("=", Int(2)); err == nil {
		t.Error("stale lookup should error")
	}
	// Every mutation path bumps the version.
	v := r.Version()
	if err := r.Set(0, 1, String("z")); err != nil {
		t.Fatal(err)
	}
	if r.Version() == v {
		t.Error("Set must bump version")
	}
	v = r.Version()
	r.Delete(func(t Tuple) bool { return false })
	if r.Version() != v {
		t.Error("no-op delete must not bump version")
	}
	r.Delete(func(t Tuple) bool { return true })
	if r.Version() == v {
		t.Error("delete must bump version")
	}
	v = r.Version()
	if err := r.InsertStrings("4", "w"); err != nil {
		t.Fatal(err)
	}
	if r.Version() == v {
		t.Error("InsertStrings must bump version")
	}
}

func TestBuildIndexErrors(t *testing.T) {
	r := indexedRelation(t)
	if _, err := r.BuildIndex("nope"); err == nil {
		t.Error("unknown column should error")
	}
}

// Property: index lookups agree with a full scan for every operator.
func TestIndexAgreesWithScanProperty(t *testing.T) {
	ops := []string{"=", "!=", "<", "<=", ">", ">="}
	prop := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		r := New("R", MustSchema(Column{Name: "K", Type: TInt}))
		n := rr.Intn(60)
		for i := 0; i < n; i++ {
			r.MustInsert(Int(int64(rr.Intn(20))))
		}
		ix, err := r.BuildIndex("K")
		if err != nil {
			return false
		}
		for trial := 0; trial < 5; trial++ {
			op := ops[rr.Intn(len(ops))]
			v := Int(int64(rr.Intn(20)))
			got, err := ix.Lookup(op, v)
			if err != nil {
				return false
			}
			pred, err := Cmp(r.Schema(), "K", op, v)
			if err != nil {
				return false
			}
			want := 0
			for _, row := range r.Rows() {
				if pred(row) {
					want++
				}
			}
			if len(got) != want {
				t.Logf("seed %d: op %s %s: index %d, scan %d", seed, op, v, len(got), want)
				return false
			}
			seen := map[int]bool{}
			for _, pos := range got {
				if seen[pos] || !pred(r.Row(pos)) {
					return false
				}
				seen[pos] = true
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestBuildIndexRejectsMixedKinds is the regression test for the
// mixed-kind binary-search bug: a column holding both strings and
// numbers has no total order, so sorting it with Value.Less and then
// binary-searching could return a wrong range (Lookup only checked the
// probe against the first indexed value). Build must refuse instead.
func TestBuildIndexRejectsMixedKinds(t *testing.T) {
	r := New("MIXED", MustSchema(Column{Name: "K", Type: TString}))
	r.MustInsert(String("b"))
	r.MustInsert(String("a"))
	// Smuggle numeric values past Insert's conformance check, as a bug
	// elsewhere (or a future dynamically typed column) could.
	r.rows = append(r.rows, Tuple{Int(5)}, Tuple{Int(1)})
	if _, err := r.BuildIndex("K"); err == nil {
		t.Fatal("BuildIndex on a mixed string/int column must error")
	}

	// Int/float mixes are mutually comparable and stay indexable.
	f := New("NUM", MustSchema(Column{Name: "K", Type: TFloat}))
	f.MustInsert(Float(2.5))
	f.MustInsert(Int(7))
	f.MustInsert(Int(1))
	ix, err := f.BuildIndex("K")
	if err != nil {
		t.Fatalf("BuildIndex on int/float column: %v", err)
	}
	rows, err := ix.Lookup(">", Int(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Errorf("Lookup(> 2) = %d rows, want 2", len(rows))
	}

	// Nulls do not participate: a column that is mixed only through
	// nulls is still homogeneous.
	n := New("NULLS", MustSchema(Column{Name: "K", Type: TInt}))
	n.MustInsert(Null())
	n.MustInsert(Int(3))
	if _, err := n.BuildIndex("K"); err != nil {
		t.Errorf("BuildIndex with nulls: %v", err)
	}
}

// TestIndexCountMatchesLookup checks the planner's cardinality estimate
// against the materialised result for every operator.
func TestIndexCountMatchesLookup(t *testing.T) {
	r := indexedRelation(t)
	ix, err := r.BuildIndex("K")
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range []string{"=", "!=", "<", "<=", ">", ">="} {
		for v := int64(0); v <= 10; v++ {
			rows, err := ix.Lookup(op, Int(v))
			if err != nil {
				t.Fatal(err)
			}
			n, err := ix.Count(op, Int(v))
			if err != nil {
				t.Fatal(err)
			}
			if n != len(rows) {
				t.Errorf("Count(%s %d) = %d, Lookup returned %d rows", op, v, n, len(rows))
			}
		}
	}
	if _, err := ix.Count("~", Int(1)); err == nil {
		t.Error("unsupported operator should error")
	}
	if _, err := ix.Count("=", String("x")); err == nil {
		t.Error("incomparable probe should error")
	}
}
