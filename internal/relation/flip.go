package relation

// FlipOp mirrors a comparison operator when its operands swap sides:
// "x op y" holds exactly when "y FlipOp(op) x" does. Equality and
// inequality are symmetric and map to themselves, as does any operator
// the table does not know. Both the QUEL planner and the SQL analyser
// normalise "constant op column" conditions through this one table, so a
// new operator (say, a BETWEEN lowering) cannot be mirrored in one layer
// and missed in the other.
func FlipOp(op string) string {
	switch op {
	case "<":
		return ">"
	case "<=":
		return ">="
	case ">":
		return "<"
	case ">=":
		return "<="
	default:
		return op
	}
}
