package relation

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func classRelation(t *testing.T) *Relation {
	t.Helper()
	s := MustSchema(
		Column{Name: "Class", Type: TString},
		Column{Name: "Type", Type: TString},
		Column{Name: "Displacement", Type: TInt},
	)
	r := New("CLASS", s)
	r.MustInsert(String("0101"), String("SSBN"), Int(16600))
	r.MustInsert(String("0102"), String("SSBN"), Int(7250))
	r.MustInsert(String("0201"), String("SSN"), Int(6000))
	r.MustInsert(String("0204"), String("SSN"), Int(3640))
	r.MustInsert(String("1301"), String("SSBN"), Int(30000))
	return r
}

func TestSelectAndPredicates(t *testing.T) {
	r := classRelation(t)
	p, err := Cmp(r.Schema(), "Displacement", ">", Int(8000))
	if err != nil {
		t.Fatal(err)
	}
	got := r.Select(p)
	if got.Len() != 2 {
		t.Fatalf("Select(>8000) = %d rows, want 2", got.Len())
	}
	eq, err := Eq(r.Schema(), "Type", String("SSN"))
	if err != nil {
		t.Fatal(err)
	}
	if n := r.Select(eq).Len(); n != 2 {
		t.Errorf("Select(Type=SSN) = %d rows, want 2", n)
	}
	if n := r.Select(And(p, eq)).Len(); n != 0 {
		t.Errorf("And: %d rows, want 0", n)
	}
	if n := r.Select(Or(p, eq)).Len(); n != 4 {
		t.Errorf("Or: %d rows, want 4", n)
	}
	if n := r.Select(Not(eq)).Len(); n != 3 {
		t.Errorf("Not: %d rows, want 3", n)
	}
}

func TestCmpOperators(t *testing.T) {
	r := classRelation(t)
	for _, c := range []struct {
		op   string
		want int
	}{
		{"=", 1}, {"!=", 4}, {"<>", 4}, {"<", 2}, {"<=", 3}, {">", 2}, {">=", 3},
	} {
		p, err := Cmp(r.Schema(), "Displacement", c.op, Int(7250))
		if err != nil {
			t.Fatal(err)
		}
		if n := r.Select(p).Len(); n != c.want {
			t.Errorf("op %q: %d rows, want %d", c.op, n, c.want)
		}
	}
	if _, err := Cmp(r.Schema(), "missing", "=", Int(0)); err == nil {
		t.Error("Cmp on missing column should error")
	}
}

func TestProjectUnique(t *testing.T) {
	r := classRelation(t)
	p, err := r.Project("Type")
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 5 {
		t.Fatalf("Project keeps duplicates: %d", p.Len())
	}
	u := p.Unique()
	if u.Len() != 2 {
		t.Fatalf("Unique = %d rows, want 2", u.Len())
	}
}

func TestSort(t *testing.T) {
	r := classRelation(t)
	s, err := r.Sort(SortKey{Column: "Displacement"})
	if err != nil {
		t.Fatal(err)
	}
	prev := int64(-1)
	for _, row := range s.Rows() {
		d := row[2].Int64()
		if d < prev {
			t.Fatalf("not sorted: %d after %d", d, prev)
		}
		prev = d
	}
	desc, err := r.Sort(SortKey{Column: "Type"}, SortKey{Column: "Displacement", Desc: true})
	if err != nil {
		t.Fatal(err)
	}
	if desc.Row(0)[0].Str() != "1301" {
		t.Errorf("multi-key sort: first row %v", desc.Row(0))
	}
	if _, err := r.Sort(SortKey{Column: "missing"}); err == nil {
		t.Error("sort on missing column should error")
	}
}

func TestDelete(t *testing.T) {
	r := classRelation(t)
	eq, _ := Eq(r.Schema(), "Type", String("SSN"))
	if n := r.Delete(eq); n != 2 {
		t.Fatalf("Delete removed %d, want 2", n)
	}
	if r.Len() != 3 {
		t.Fatalf("Len after delete = %d, want 3", r.Len())
	}
}

// TestDeleteAfterRenameColumns is the regression test for the in-place
// Delete compaction: the renamed view shares tuples with the original,
// and deleting from the original must not shuffle the view's rows.
func TestDeleteAfterRenameColumns(t *testing.T) {
	r := classRelation(t)
	view, err := r.RenameColumns(func(c string) string { return "CLASS." + c })
	if err != nil {
		t.Fatal(err)
	}
	want := make([]string, view.Len())
	for i, row := range view.Rows() {
		want[i] = row.Key()
	}

	eq, _ := Eq(r.Schema(), "Type", String("SSBN"))
	if n := r.Delete(eq); n != 3 {
		t.Fatalf("Delete removed %d, want 3", n)
	}
	if view.Len() != len(want) {
		t.Fatalf("view length changed: %d, want %d", view.Len(), len(want))
	}
	for i, row := range view.Rows() {
		if row.Key() != want[i] {
			t.Errorf("view row %d corrupted by Delete: %v", i, row)
		}
	}

	// And the other direction: WithName views survive deletes too.
	r2 := classRelation(t)
	named := r2.WithName("COPY")
	if r2.Delete(func(Tuple) bool { return true }) != 5 {
		t.Fatal("expected full delete")
	}
	if named.Len() != 5 || named.Row(0)[0].Str() != "0101" {
		t.Errorf("WithName view corrupted: len=%d first=%v", named.Len(), named.Row(0))
	}
}

// TestSetAfterViewIsInvisible pins the copy-on-write contract: replacing
// a cell in the original never shows through a shallow copy.
func TestSetAfterViewIsInvisible(t *testing.T) {
	r := classRelation(t)
	view := r.WithName("COPY")
	if err := r.Set(0, 2, Int(99)); err != nil {
		t.Fatal(err)
	}
	if got := view.Row(0)[2].Int64(); got != 16600 {
		t.Errorf("view observed Set through shared storage: %d", got)
	}
	if got := r.Row(0)[2].Int64(); got != 99 {
		t.Errorf("Set lost: %d", got)
	}
}

// TestSortNullsFirst checks the deterministic null ordering: nulls sort
// before every value ascending, after every value descending, and the
// result is stable and reproducible across repeated sorts.
func TestSortNullsFirst(t *testing.T) {
	s := MustSchema(
		Column{Name: "Tag", Type: TString},
		Column{Name: "N", Type: TInt},
	)
	r := New("R", s)
	r.MustInsert(String("a"), Int(2))
	r.MustInsert(String("b"), Null())
	r.MustInsert(String("c"), Int(1))
	r.MustInsert(String("d"), Null())
	r.MustInsert(String("e"), Int(2))

	asc, err := r.Sort(SortKey{Column: "N"})
	if err != nil {
		t.Fatal(err)
	}
	wantAsc := []string{"b", "d", "c", "a", "e"} // nulls first (stable), then 1, 2, 2 (stable)
	for i, w := range wantAsc {
		if got := asc.Row(i)[0].Str(); got != w {
			t.Fatalf("asc row %d = %s, want %s (full: %v)", i, got, w, asc.Rows())
		}
	}
	desc, err := r.Sort(SortKey{Column: "N", Desc: true})
	if err != nil {
		t.Fatal(err)
	}
	wantDesc := []string{"a", "e", "c", "b", "d"} // nulls last descending
	for i, w := range wantDesc {
		if got := desc.Row(i)[0].Str(); got != w {
			t.Fatalf("desc row %d = %s, want %s (full: %v)", i, got, w, desc.Rows())
		}
	}
	// Reproducible: sorting again (or sorting the sorted output) yields
	// the identical order.
	for trial := 0; trial < 3; trial++ {
		again, err := r.Sort(SortKey{Column: "N"})
		if err != nil {
			t.Fatal(err)
		}
		for i := range wantAsc {
			if again.Row(i)[0].Str() != wantAsc[i] {
				t.Fatalf("trial %d: unstable null ordering: %v", trial, again.Rows())
			}
		}
	}
}

func TestUnionDiff(t *testing.T) {
	r := classRelation(t)
	ssn := r.Select(func(t Tuple) bool { return t[1].Str() == "SSN" })
	ssbn := r.Select(func(t Tuple) bool { return t[1].Str() == "SSBN" })
	u, err := ssn.Union(ssbn)
	if err != nil {
		t.Fatal(err)
	}
	if u.Len() != r.Len() {
		t.Errorf("union = %d rows, want %d", u.Len(), r.Len())
	}
	d, err := r.Diff(ssn)
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != ssbn.Len() {
		t.Errorf("diff = %d rows, want %d", d.Len(), ssbn.Len())
	}
	other := New("X", MustSchema(Column{Name: "A", Type: TInt}))
	if _, err := r.Union(other); err == nil {
		t.Error("union with mismatched schema should error")
	}
	if _, err := r.Diff(other); err == nil {
		t.Error("diff with mismatched schema should error")
	}
}

func submarineRelation(t *testing.T) *Relation {
	t.Helper()
	s := MustSchema(
		Column{Name: "Id", Type: TString},
		Column{Name: "Name", Type: TString},
		Column{Name: "Class", Type: TString},
	)
	r := New("SUBMARINE", s)
	r.MustInsert(String("SSBN730"), String("Rhode Island"), String("0101"))
	r.MustInsert(String("SSBN130"), String("Typhoon"), String("1301"))
	r.MustInsert(String("SSN692"), String("Omaha"), String("0201"))
	return r
}

func TestJoin(t *testing.T) {
	sub := submarineRelation(t)
	cls := classRelation(t)
	j, err := sub.Join(cls, JoinOn{Left: "Class", Right: "Class"})
	if err != nil {
		t.Fatal(err)
	}
	if j.Len() != 3 {
		t.Fatalf("join = %d rows, want 3", j.Len())
	}
	// Colliding "Class" must be qualified on both sides.
	if _, ok := j.Schema().Index("SUBMARINE.Class"); !ok {
		t.Errorf("join schema missing SUBMARINE.Class: %s", j.Schema())
	}
	if _, ok := j.Schema().Index("CLASS.Class"); !ok {
		t.Errorf("join schema missing CLASS.Class: %s", j.Schema())
	}
	nl, err := sub.JoinNestedLoop(cls, JoinOn{Left: "Class", Right: "Class"})
	if err != nil {
		t.Fatal(err)
	}
	if nl.Len() != j.Len() {
		t.Errorf("nested-loop join = %d rows, hash join = %d", nl.Len(), j.Len())
	}
	if _, err := sub.Join(cls); err == nil {
		t.Error("join with no conditions should error")
	}
	if _, err := sub.Join(cls, JoinOn{Left: "nope", Right: "Class"}); err == nil {
		t.Error("join on missing left column should error")
	}
	if _, err := sub.Join(cls, JoinOn{Left: "Class", Right: "nope"}); err == nil {
		t.Error("join on missing right column should error")
	}
}

func TestMinMaxCountDistinct(t *testing.T) {
	r := classRelation(t)
	min, ok, err := r.Min("Displacement")
	if err != nil || !ok || !min.Equal(Int(3640)) {
		t.Errorf("Min = %v %v %v", min, ok, err)
	}
	max, ok, err := r.Max("Displacement")
	if err != nil || !ok || !max.Equal(Int(30000)) {
		t.Errorf("Max = %v %v %v", max, ok, err)
	}
	n, err := r.CountDistinct("Type")
	if err != nil || n != 2 {
		t.Errorf("CountDistinct = %d %v", n, err)
	}
	empty := New("E", r.Schema())
	if _, ok, _ := empty.Min("Displacement"); ok {
		t.Error("Min of empty relation should report !ok")
	}
	if _, _, err := r.Min("missing"); err == nil {
		t.Error("Min on missing column should error")
	}
}

// Property: hash join and nested-loop join agree on random data.
func TestJoinStrategiesAgreeProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		ls := MustSchema(Column{Name: "K", Type: TInt}, Column{Name: "A", Type: TInt})
		rs := MustSchema(Column{Name: "K2", Type: TInt}, Column{Name: "B", Type: TInt})
		l := New("L", ls)
		r := New("R", rs)
		for i := 0; i < rr.Intn(30); i++ {
			l.MustInsert(Int(int64(rr.Intn(8))), Int(int64(rr.Intn(100))))
		}
		for i := 0; i < rr.Intn(30); i++ {
			r.MustInsert(Int(int64(rr.Intn(8))), Int(int64(rr.Intn(100))))
		}
		h, err1 := l.Join(r, JoinOn{Left: "K", Right: "K2"})
		n, err2 := l.JoinNestedLoop(r, JoinOn{Left: "K", Right: "K2"})
		if err1 != nil || err2 != nil {
			return false
		}
		if h.Len() != n.Len() {
			return false
		}
		// Same multiset of tuples.
		count := map[string]int{}
		for _, t := range h.Rows() {
			count[t.Key()]++
		}
		for _, t := range n.Rows() {
			count[t.Key()]--
		}
		for _, c := range count {
			if c != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: Unique is idempotent and never grows the relation.
func TestUniqueIdempotentProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		s := MustSchema(Column{Name: "A", Type: TInt}, Column{Name: "B", Type: TString})
		r := New("R", s)
		for i := 0; i < rr.Intn(50); i++ {
			r.MustInsert(Int(int64(rr.Intn(5))), String(string(rune('a'+rr.Intn(3)))))
		}
		u := r.Unique()
		if u.Len() > r.Len() {
			return false
		}
		return u.Unique().Len() == u.Len()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Select(p) ∪ Select(not p) is a permutation of the input.
func TestSelectPartitionProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		s := MustSchema(Column{Name: "A", Type: TInt})
		r := New("R", s)
		for i := 0; i < rr.Intn(50); i++ {
			r.MustInsert(Int(int64(rr.Intn(100))))
		}
		p, err := Cmp(s, "A", "<", Int(50))
		if err != nil {
			return false
		}
		return r.Select(p).Len()+r.Select(Not(p)).Len() == r.Len()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
