package relation

import (
	"fmt"
	"sort"
)

// Index is a sorted secondary index over one column: row positions
// ordered by the column's value, supporting binary-search lookups for
// the comparison operators. An index is a snapshot — it is valid only
// for the relation version it was built against (see Relation.Version).
type Index struct {
	rel     *Relation
	col     int
	order   []int // row indices sorted ascending by column value
	version uint64
}

// BuildIndex sorts the relation's rows by the named column. Null values
// are excluded from the index (no comparison matches them).
//
// The column's non-null values must be kind-homogeneous (all mutually
// comparable: one of {string} or {int, float}). A mixed-kind column has
// no total order — Value.Less falls back to an arbitrary cross-kind
// order, so a binary search over it could return a wrong range — and is
// rejected here, at build time, rather than producing incorrect rows at
// lookup time.
func (r *Relation) BuildIndex(column string) (*Index, error) {
	ci, ok := r.schema.Index(column)
	if !ok {
		return nil, fmt.Errorf("relation %s: no column %q", r.name, column)
	}
	ix := &Index{rel: r, col: ci, version: r.version}
	first := Null()
	for i, row := range r.rows {
		v := row[ci]
		if v.IsNull() {
			continue
		}
		if first.IsNull() {
			first = v
		} else if !v.Comparable(first) {
			return nil, fmt.Errorf("relation %s: cannot index column %q: mixed %s and %s values",
				r.name, column, first.Kind(), v.Kind())
		}
		ix.order = append(ix.order, i)
	}
	sort.SliceStable(ix.order, func(a, b int) bool {
		return r.rows[ix.order[a]][ci].Less(r.rows[ix.order[b]][ci])
	})
	return ix, nil
}

// Fresh reports whether the index still matches the relation's contents.
func (ix *Index) Fresh() bool { return ix.version == ix.rel.version }

// For reports whether the index was built over exactly this relation
// object. Fresh alone cannot tell a replaced relation apart from the
// one the index was built on — the old object's version never moved —
// so cache validation must check identity as well as freshness.
func (ix *Index) For(r *Relation) bool { return ix.rel == r }

// Len returns the number of indexed rows.
func (ix *Index) Len() int { return len(ix.order) }

// value returns the indexed column value at sorted position p.
func (ix *Index) value(p int) Value { return ix.rel.rows[ix.order[p]][ix.col] }

// bounds binary-searches the sorted order for the probe value: lower is
// the first position with value >= v, upper the first with value > v.
// Incomparable probes are rejected up front (the index is
// kind-homogeneous, so checking one value covers all), and a stale index
// is an error.
func (ix *Index) bounds(v Value) (lower, upper int, err error) {
	if !ix.Fresh() {
		return 0, 0, fmt.Errorf("relation %s: index is stale", ix.rel.name)
	}
	n := len(ix.order)
	if n > 0 && !ix.value(0).Comparable(v) {
		return 0, 0, fmt.Errorf("relation %s: cannot compare %s column with %s",
			ix.rel.name, ix.rel.schema.Col(ix.col).Type, v.Kind())
	}
	lower = sort.Search(n, func(p int) bool { return ix.value(p).MustCompare(v) >= 0 })
	upper = sort.Search(n, func(p int) bool { return ix.value(p).MustCompare(v) > 0 })
	return lower, upper, nil
}

// Count returns how many indexed rows satisfy "value op v" without
// materialising them — the cardinality estimate cost-based index
// selection ranks candidate access paths by. Same operator set and error
// conditions as Lookup.
func (ix *Index) Count(op string, v Value) (int, error) {
	lower, upper, err := ix.bounds(v)
	if err != nil {
		return 0, err
	}
	n := len(ix.order)
	switch op {
	case "=":
		return upper - lower, nil
	case "<":
		return lower, nil
	case "<=":
		return upper, nil
	case ">":
		return n - upper, nil
	case ">=":
		return n - lower, nil
	case "!=", "<>":
		return n - (upper - lower), nil
	default:
		return 0, fmt.Errorf("relation: index count: unsupported operator %q", op)
	}
}

// Lookup returns the row positions whose column value satisfies "value
// op v", in index (ascending value) order. Supported operators: =, !=,
// <, <=, >, >=. A stale index returns an error.
func (ix *Index) Lookup(op string, v Value) ([]int, error) {
	lower, upper, err := ix.bounds(v)
	if err != nil {
		return nil, err
	}
	n := len(ix.order)
	slice := func(lo, hi int) []int {
		out := make([]int, hi-lo)
		copy(out, ix.order[lo:hi])
		return out
	}
	switch op {
	case "=":
		return slice(lower, upper), nil
	case "<":
		return slice(0, lower), nil
	case "<=":
		return slice(0, upper), nil
	case ">":
		return slice(upper, n), nil
	case ">=":
		return slice(lower, n), nil
	case "!=", "<>":
		out := make([]int, 0, n-(upper-lower))
		out = append(out, ix.order[:lower]...)
		out = append(out, ix.order[upper:]...)
		return out, nil
	default:
		return nil, fmt.Errorf("relation: index lookup: unsupported operator %q", op)
	}
}
