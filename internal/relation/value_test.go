package relation

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestValueKinds(t *testing.T) {
	cases := []struct {
		v    Value
		kind Kind
		str  string
	}{
		{Null(), KindNull, "NULL"},
		{String("SSBN"), KindString, "SSBN"},
		{Int(7250), KindInt, "7250"},
		{Float(2.5), KindFloat, "2.5"},
	}
	for _, c := range cases {
		if c.v.Kind() != c.kind {
			t.Errorf("%#v: kind = %v, want %v", c.v, c.v.Kind(), c.kind)
		}
		if got := c.v.String(); got != c.str {
			t.Errorf("%#v: String() = %q, want %q", c.v, got, c.str)
		}
	}
	if !Null().IsNull() || Int(0).IsNull() {
		t.Error("IsNull misclassifies")
	}
}

func TestValueCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{Int(1), Int(2), -1},
		{Int(2), Int(2), 0},
		{Int(3), Int(2), 1},
		{Float(1.5), Int(2), -1},
		{Int(2), Float(1.5), 1},
		{Float(2), Int(2), 0},
		{String("BQQ-2"), String("BQQ-8"), -1},
		{String("SSN623"), String("SSN635"), -1},
		{String("a"), String("a"), 0},
		{Null(), Null(), 0},
	}
	for _, c := range cases {
		got, err := c.a.Compare(c.b)
		if err != nil {
			t.Errorf("Compare(%#v, %#v): %v", c.a, c.b, err)
			continue
		}
		if got != c.want {
			t.Errorf("Compare(%#v, %#v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestValueCompareIncomparable(t *testing.T) {
	pairs := [][2]Value{
		{String("x"), Int(1)},
		{Int(1), String("x")},
		{Null(), Int(1)},
		{String("x"), Null()},
		{Float(1), String("x")},
	}
	for _, p := range pairs {
		if _, err := p[0].Compare(p[1]); err == nil {
			t.Errorf("Compare(%#v, %#v): want error", p[0], p[1])
		}
		if p[0].Equal(p[1]) {
			t.Errorf("Equal(%#v, %#v): want false", p[0], p[1])
		}
		if p[0].Less(p[1]) {
			t.Errorf("Less(%#v, %#v): want false", p[0], p[1])
		}
	}
}

func TestMustComparePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustCompare on incomparable kinds should panic")
		}
	}()
	String("x").MustCompare(Int(1))
}

func TestValueKeyEquality(t *testing.T) {
	if Int(3).Key() != Float(3).Key() {
		t.Error("Int(3) and Float(3) should share a key")
	}
	if Int(3).Key() == String("3").Key() {
		t.Error("Int(3) and String(\"3\") must not share a key")
	}
	if Null().Key() == String("").Key() {
		t.Error("Null and empty string must not share a key")
	}
}

// TestValueKeyInt53Boundary pins the contract that keys collide exactly
// when Equal holds, across the 2^53 boundary where float64 loses integer
// precision. Int(1<<53) and Int(1<<53+1) used to collide because both
// routed through float64 formatting.
func TestValueKeyInt53Boundary(t *testing.T) {
	big := int64(1) << 53
	pairs := []struct {
		a, b Value
	}{
		{Int(big), Int(big + 1)},
		{Int(big + 1), Int(big + 2)},
		{Int(-big), Int(-big - 1)},
		{Int(1<<62 + 1), Int(1 << 62)},
		{Int(math.MaxInt64), Int(math.MaxInt64 - 1)},
	}
	for _, p := range pairs {
		if p.a.Key() == p.b.Key() {
			t.Errorf("%v and %v share key %q", p.a, p.b, p.a.Key())
		}
		if p.a.Equal(p.b) {
			t.Errorf("%v and %v compare equal", p.a, p.b)
		}
	}
	// Int/float unification survives for exactly representable values,
	// including at the boundary itself.
	for _, i := range []int64{0, 3, -7, big, -big, 1 << 60} {
		if Int(i).Key() != Float(float64(i)).Key() {
			t.Errorf("Int(%d) and Float of same value should share a key", i)
		}
		if !Int(i).Equal(Float(float64(i))) {
			t.Errorf("Int(%d) should equal Float of same value", i)
		}
	}
	// Compare must agree with Key at the boundary: float64(1<<53) equals
	// the int 1<<53 but not 1<<53+1, even though float64 conversion of
	// the latter would round onto it.
	if Int(big+1).Equal(Float(float64(big))) {
		t.Error("Int(2^53+1) must not equal Float(2^53)")
	}
	if c, err := Int(big + 1).Compare(Float(float64(big))); err != nil || c != 1 {
		t.Errorf("Int(2^53+1) vs Float(2^53): got %d, %v; want 1", c, err)
	}
	if c, err := Int(-big - 1).Compare(Float(float64(-big))); err != nil || c != -1 {
		t.Errorf("Int(-2^53-1) vs Float(-2^53): got %d, %v; want -1", c, err)
	}
	// MaxInt64 rounds up to 2^63 as a float; the float is strictly larger.
	if c, err := Int(math.MaxInt64).Compare(Float(9.223372036854776e18)); err != nil || c != -1 {
		t.Errorf("MaxInt64 vs 2^63 float: got %d, %v; want -1", c, err)
	}
}

func TestParseValue(t *testing.T) {
	v, err := ParseValue("7250", TInt)
	if err != nil || !v.Equal(Int(7250)) {
		t.Errorf("ParseValue int: %v %v", v, err)
	}
	v, err = ParseValue(" 2.5 ", TFloat)
	if err != nil || !v.Equal(Float(2.5)) {
		t.Errorf("ParseValue float: %v %v", v, err)
	}
	v, err = ParseValue("Ohio", TString)
	if err != nil || !v.Equal(String("Ohio")) {
		t.Errorf("ParseValue string: %v %v", v, err)
	}
	if _, err = ParseValue("xyz", TInt); err == nil {
		t.Error("ParseValue bad int: want error")
	}
	if _, err = ParseValue("1.2.3", TFloat); err == nil {
		t.Error("ParseValue bad float: want error")
	}
}

func TestConforms(t *testing.T) {
	cases := []struct {
		v    Value
		t    Type
		want bool
	}{
		{Null(), TString, true},
		{Null(), TInt, true},
		{String("x"), TString, true},
		{String("x"), TInt, false},
		{Int(1), TInt, true},
		{Int(1), TFloat, true},
		{Int(1), TString, false},
		{Float(1), TFloat, true},
		{Float(1), TInt, false},
	}
	for _, c := range cases {
		if got := c.v.Conforms(c.t); got != c.want {
			t.Errorf("Conforms(%#v, %v) = %v, want %v", c.v, c.t, got, c.want)
		}
	}
}

// genValue produces a random comparable value for property tests; all
// values drawn from the same call share a kind class (numeric or string).
func genValue(r *rand.Rand, stringKind bool) Value {
	if stringKind {
		const letters = "ABCDEFGHIJ"
		n := r.Intn(6)
		b := make([]byte, n)
		for i := range b {
			b[i] = letters[r.Intn(len(letters))]
		}
		return String(string(b))
	}
	if r.Intn(2) == 0 {
		return Int(int64(r.Intn(2001) - 1000))
	}
	return Float(float64(r.Intn(2001)-1000) / 4)
}

// Property: Compare is a total order on comparable values — antisymmetric
// and transitive, and consistent with Equal and Less.
func TestCompareTotalOrderProperty(t *testing.T) {
	prop := func(seed int64, stringKind bool) bool {
		rr := rand.New(rand.NewSource(seed))
		a, b, c := genValue(rr, stringKind), genValue(rr, stringKind), genValue(rr, stringKind)
		ab := a.MustCompare(b)
		ba := b.MustCompare(a)
		if ab != -ba {
			return false
		}
		if (ab == 0) != a.Equal(b) {
			return false
		}
		if (ab < 0) != a.Less(b) {
			return false
		}
		// transitivity: a<=b and b<=c implies a<=c
		if ab <= 0 && b.MustCompare(c) <= 0 && a.MustCompare(c) > 0 {
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: Key agrees with Equal.
func TestKeyAgreesWithEqualProperty(t *testing.T) {
	prop := func(seed int64, stringKind bool) bool {
		rr := rand.New(rand.NewSource(seed))
		a, b := genValue(rr, stringKind), genValue(rr, stringKind)
		return (a.Key() == b.Key()) == a.Equal(b)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
