package relation

import (
	"fmt"
	"sort"
)

// Predicate decides whether a tuple qualifies for Select or Delete.
type Predicate func(Tuple) bool

// Select returns a new relation containing the tuples satisfying pred.
func (r *Relation) Select(pred Predicate) *Relation {
	out := New(r.name, r.schema)
	for _, t := range r.rows {
		if pred(t) {
			out.rows = append(out.rows, t)
		}
	}
	return out
}

// Project returns a new relation with only the named columns, in order.
// Duplicates are preserved; compose with Unique for set semantics.
func (r *Relation) Project(names ...string) (*Relation, error) {
	schema, idx, err := r.schema.Project(names...)
	if err != nil {
		return nil, fmt.Errorf("relation %s: %w", r.name, err)
	}
	out := New(r.name, schema)
	out.rows = make([]Tuple, len(r.rows))
	for j, t := range r.rows {
		row := make(Tuple, len(idx))
		for i, src := range idx {
			row[i] = t[src]
		}
		out.rows[j] = row
	}
	return out, nil
}

// Unique returns a new relation with duplicate tuples removed, keeping the
// first occurrence of each.
func (r *Relation) Unique() *Relation {
	out := New(r.name, r.schema)
	seen := make(map[string]struct{}, len(r.rows))
	for _, t := range r.rows {
		k := t.Key()
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = struct{}{}
		out.rows = append(out.rows, t)
	}
	return out
}

// SortKey names a column to order by and the direction.
type SortKey struct {
	Column string
	Desc   bool
}

// Sort returns a new relation ordered by the given keys (stable). Null
// sorts before every non-null value (so nulls come first ascending, last
// descending) — a fixed rule rather than a skipped comparison, keeping
// the comparator transitive and the output deterministic.
func (r *Relation) Sort(keys ...SortKey) (*Relation, error) {
	idx := make([]int, len(keys))
	for i, k := range keys {
		j, ok := r.schema.Index(k.Column)
		if !ok {
			return nil, fmt.Errorf("relation %s: sort: no column %q", r.name, k.Column)
		}
		idx[i] = j
	}
	out := r.Clone()
	sort.SliceStable(out.rows, func(a, b int) bool {
		for i, j := range idx {
			c := SortCompare(out.rows[a][j], out.rows[b][j])
			if c == 0 {
				continue
			}
			if keys[i].Desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
	return out, nil
}

// SortCompare orders two values for sorting: null < any non-null value;
// otherwise Compare. Values of genuinely incomparable kinds cannot share
// a typed column, so the remaining error case is unreachable and treated
// as equal. Exported so the streaming executor's Sort operator orders
// rows exactly like Relation.Sort.
func SortCompare(a, b Value) int {
	switch {
	case a.IsNull() && b.IsNull():
		return 0
	case a.IsNull():
		return -1
	case b.IsNull():
		return 1
	}
	c, err := a.Compare(b)
	if err != nil {
		return 0
	}
	return c
}

// Delete removes the tuples satisfying pred and returns how many were
// removed. The survivors are rebuilt into a fresh slice rather than
// compacted in place, so shallow copies sharing the old backing array
// (WithName, RenameColumns views) keep their contents intact.
func (r *Relation) Delete(pred Predicate) int {
	kept := make([]Tuple, 0, len(r.rows))
	removed := 0
	for _, t := range r.rows {
		if pred(t) {
			removed++
			continue
		}
		kept = append(kept, t)
	}
	r.rows = kept
	r.shared.Store(false)
	if removed > 0 {
		r.version++
	}
	return removed
}

// Union returns r ∪ s (multiset append; compose with Unique for sets).
// The schemas must be equal.
func (r *Relation) Union(s *Relation) (*Relation, error) {
	if !r.schema.Equal(s.schema) {
		return nil, fmt.Errorf("relation: union schema mismatch: %s vs %s", r.schema, s.schema)
	}
	out := New(r.name, r.schema)
	out.rows = append(append([]Tuple(nil), r.rows...), s.rows...)
	return out, nil
}

// Diff returns the tuples of r that do not occur in s (set difference).
// The schemas must be equal.
func (r *Relation) Diff(s *Relation) (*Relation, error) {
	if !r.schema.Equal(s.schema) {
		return nil, fmt.Errorf("relation: diff schema mismatch: %s vs %s", r.schema, s.schema)
	}
	drop := make(map[string]struct{}, s.Len())
	for _, t := range s.rows {
		drop[t.Key()] = struct{}{}
	}
	out := New(r.name, r.schema)
	for _, t := range r.rows {
		if _, gone := drop[t.Key()]; !gone {
			out.rows = append(out.rows, t)
		}
	}
	return out, nil
}

// JoinOn names one equality condition of an equi-join.
type JoinOn struct {
	Left, Right string // column names in the left and right relations
}

// Join computes the equi-join of r and s on the given column pairs using a
// hash join on the right input. The result schema is the left columns
// followed by the right columns; colliding names are qualified as
// "name.column" using each relation's name.
func (r *Relation) Join(s *Relation, on ...JoinOn) (*Relation, error) {
	if len(on) == 0 {
		return nil, fmt.Errorf("relation: join of %s and %s requires at least one condition", r.name, s.name)
	}
	li := make([]int, len(on))
	ri := make([]int, len(on))
	for k, o := range on {
		var ok bool
		if li[k], ok = r.schema.Index(o.Left); !ok {
			return nil, fmt.Errorf("relation %s: join: no column %q", r.name, o.Left)
		}
		if ri[k], ok = s.schema.Index(o.Right); !ok {
			return nil, fmt.Errorf("relation %s: join: no column %q", s.name, o.Right)
		}
	}
	schema, err := joinSchema(r, s)
	if err != nil {
		return nil, err
	}
	// Build hash table on the right input.
	build := make(map[string][]Tuple, s.Len())
	for _, t := range s.rows {
		build[joinKey(t, ri)] = append(build[joinKey(t, ri)], t)
	}
	out := New(r.name+"⋈"+s.name, schema)
	for _, lt := range r.rows {
		for _, rt := range build[joinKey(lt, li)] {
			row := make(Tuple, 0, len(lt)+len(rt))
			row = append(append(row, lt...), rt...)
			out.rows = append(out.rows, row)
		}
	}
	return out, nil
}

// JoinNestedLoop computes the same equi-join as Join with a nested-loop
// strategy. It exists for the join-strategy ablation bench.
func (r *Relation) JoinNestedLoop(s *Relation, on ...JoinOn) (*Relation, error) {
	if len(on) == 0 {
		return nil, fmt.Errorf("relation: join of %s and %s requires at least one condition", r.name, s.name)
	}
	li := make([]int, len(on))
	ri := make([]int, len(on))
	for k, o := range on {
		var ok bool
		if li[k], ok = r.schema.Index(o.Left); !ok {
			return nil, fmt.Errorf("relation %s: join: no column %q", r.name, o.Left)
		}
		if ri[k], ok = s.schema.Index(o.Right); !ok {
			return nil, fmt.Errorf("relation %s: join: no column %q", s.name, o.Right)
		}
	}
	schema, err := joinSchema(r, s)
	if err != nil {
		return nil, err
	}
	out := New(r.name+"⋈"+s.name, schema)
	for _, lt := range r.rows {
	right:
		for _, rt := range s.rows {
			for k := range on {
				if !lt[li[k]].Equal(rt[ri[k]]) {
					continue right
				}
			}
			row := make(Tuple, 0, len(lt)+len(rt))
			row = append(append(row, lt...), rt...)
			out.rows = append(out.rows, row)
		}
	}
	return out, nil
}

func joinKey(t Tuple, idx []int) string {
	k := ""
	for _, i := range idx {
		k += t[i].Key() + "\x1f"
	}
	return k
}

// joinSchema concatenates the two schemas, qualifying colliding column
// names with the owning relation's name.
func joinSchema(r, s *Relation) (*Schema, error) {
	collides := func(name string, sc *Schema) bool {
		_, ok := sc.Index(name)
		return ok
	}
	cols := make([]Column, 0, r.schema.Len()+s.schema.Len())
	for _, c := range r.schema.Columns() {
		name := c.Name
		if collides(name, s.schema) {
			name = r.name + "." + name
		}
		cols = append(cols, Column{Name: name, Type: c.Type})
	}
	for _, c := range s.schema.Columns() {
		name := c.Name
		if collides(name, r.schema) {
			name = s.name + "." + name
		}
		cols = append(cols, Column{Name: name, Type: c.Type})
	}
	return NewSchema(cols...)
}

// Min returns the minimum value of the named column, ignoring nulls.
// ok is false when the column has no non-null values.
func (r *Relation) Min(column string) (v Value, ok bool, err error) {
	return r.extreme(column, -1)
}

// Max returns the maximum value of the named column, ignoring nulls.
func (r *Relation) Max(column string) (v Value, ok bool, err error) {
	return r.extreme(column, 1)
}

func (r *Relation) extreme(column string, dir int) (Value, bool, error) {
	i, found := r.schema.Index(column)
	if !found {
		return Value{}, false, fmt.Errorf("relation %s: no column %q", r.name, column)
	}
	var best Value
	have := false
	for _, t := range r.rows {
		v := t[i]
		if v.IsNull() {
			continue
		}
		if !have {
			best, have = v, true
			continue
		}
		c, err := v.Compare(best)
		if err != nil {
			return Value{}, false, fmt.Errorf("relation %s column %s: %w", r.name, column, err)
		}
		if c*dir > 0 {
			best = v
		}
	}
	return best, have, nil
}

// CountDistinct returns the number of distinct values in the named column.
func (r *Relation) CountDistinct(column string) (int, error) {
	vals, err := r.Column(column)
	if err != nil {
		return 0, err
	}
	seen := make(map[string]struct{}, len(vals))
	for _, v := range vals {
		seen[v.Key()] = struct{}{}
	}
	return len(seen), nil
}

// Eq returns a predicate matching tuples whose named column equals v.
func Eq(s *Schema, column string, v Value) (Predicate, error) {
	i, ok := s.Index(column)
	if !ok {
		return nil, fmt.Errorf("relation: no column %q", column)
	}
	return func(t Tuple) bool { return t[i].Equal(v) }, nil
}

// Cmp returns a predicate comparing the named column against v with the
// given operator: one of "=", "!=", "<", "<=", ">", ">=".
func Cmp(s *Schema, column, op string, v Value) (Predicate, error) {
	i, ok := s.Index(column)
	if !ok {
		return nil, fmt.Errorf("relation: no column %q", column)
	}
	return func(t Tuple) bool {
		c, err := t[i].Compare(v)
		if err != nil {
			return false
		}
		switch op {
		case "=":
			return c == 0
		case "!=", "<>":
			return c != 0
		case "<":
			return c < 0
		case "<=":
			return c <= 0
		case ">":
			return c > 0
		case ">=":
			return c >= 0
		default:
			return false
		}
	}, nil
}

// And combines predicates conjunctively.
func And(preds ...Predicate) Predicate {
	return func(t Tuple) bool {
		for _, p := range preds {
			if !p(t) {
				return false
			}
		}
		return true
	}
}

// Or combines predicates disjunctively.
func Or(preds ...Predicate) Predicate {
	return func(t Tuple) bool {
		for _, p := range preds {
			if p(t) {
				return true
			}
		}
		return false
	}
}

// Not negates a predicate.
func Not(p Predicate) Predicate {
	return func(t Tuple) bool { return !p(t) }
}
