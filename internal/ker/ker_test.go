package ker_test

import (
	"strings"
	"testing"

	"intensional/internal/ker"
	"intensional/internal/relation"
	"intensional/internal/shipdb"
)

func parseShipSchema(t *testing.T) *ker.Model {
	t.Helper()
	m, err := ker.Parse(shipdb.KERSchema)
	if err != nil {
		t.Fatalf("parsing Appendix B schema: %v", err)
	}
	return m
}

func TestParseShipSchemaDomains(t *testing.T) {
	m := parseShipSchema(t)
	d, ok := m.Domain("CLASS_NAME")
	if !ok {
		t.Fatal("domain CLASS_NAME missing")
	}
	if d.Base != "NAME" || d.Storage != relation.TString {
		t.Errorf("CLASS_NAME = %+v", d)
	}
	// char[20] resolves through the derived chain.
	name, ok := m.Domain("NAME")
	if !ok || name.CharLen != 20 {
		t.Errorf("NAME domain = %+v", name)
	}
	if got := len(m.Domains()); got != 5 {
		t.Errorf("non-standard domains = %d, want 5", got)
	}
}

func TestParseShipSchemaTypes(t *testing.T) {
	m := parseShipSchema(t)
	cls, ok := m.Type("CLASS")
	if !ok {
		t.Fatal("CLASS missing")
	}
	if len(cls.Attrs) != 4 {
		t.Fatalf("CLASS attrs = %v", cls.Attrs)
	}
	if key := cls.KeyAttrs(); len(key) != 1 || key[0].Name != "Class" {
		t.Errorf("CLASS key = %v", key)
	}
	if a, ok := cls.Attr("displacement"); !ok || a.Domain != "integer" {
		t.Errorf("Displacement attr = %v %v", a, ok)
	}
	// Two constraint rules plus two structure rules from "CLASS contains".
	if len(cls.Constraints) != 4 {
		t.Errorf("CLASS constraints = %d:\n", len(cls.Constraints))
		for _, c := range cls.Constraints {
			t.Logf("  %s", c)
		}
	}
	inst, ok := m.Type("INSTALL")
	if !ok {
		t.Fatal("INSTALL missing")
	}
	if len(inst.Constraints) != 4 {
		t.Errorf("INSTALL constraints = %d", len(inst.Constraints))
	}
	sr, ok := inst.Constraints[3].(ker.StructureRule)
	if !ok {
		t.Fatalf("INSTALL constraint 3 is %T", inst.Constraints[3])
	}
	if len(sr.Roles) != 2 || sr.ConclVar != "x" || sr.ConclIsa != "SSN" {
		t.Errorf("structure rule = %+v", sr)
	}
	if len(sr.LHS) != 1 || sr.LHS[0].Ref() != "y.Sonar" || !sr.LHS[0].IsPoint() {
		t.Errorf("structure rule LHS = %v", sr.LHS)
	}
}

func TestParseShipSchemaHierarchy(t *testing.T) {
	m := parseShipSchema(t)
	cls, _ := m.Type("CLASS")
	if len(cls.Subtypes) != 2 {
		t.Fatalf("CLASS subtypes = %v", cls.Subtypes)
	}
	if !m.IsSubtypeOf("SSBN", "CLASS") {
		t.Error("SSBN should be a subtype of CLASS")
	}
	if m.IsSubtypeOf("CLASS", "SSBN") {
		t.Error("CLASS is not a subtype of SSBN")
	}
	sub, _ := m.Type("SUBMARINE")
	if len(sub.Subtypes) != 13 {
		t.Errorf("SUBMARINE subtypes = %d, want 13", len(sub.Subtypes))
	}
	sonar, _ := m.Type("SONAR")
	if len(sonar.Subtypes) != 3 {
		t.Errorf("SONAR subtypes = %v", sonar.Subtypes)
	}
	roots := m.RootTypes()
	names := make([]string, len(roots))
	for i, r := range roots {
		names[i] = r.Name
	}
	for _, want := range []string{"CLASS", "SUBMARINE", "TYPE", "SONAR", "INSTALL"} {
		if !containsAnyFold(names, want) {
			t.Errorf("roots %v missing %s", names, want)
		}
	}
}

func TestInheritance(t *testing.T) {
	m, err := ker.Parse(`
object type PERSON
  has key: Id domain: integer
  has: Name domain: char[20]

PERSON contains PROFESSOR, STUDENT

object type PROFESSOR
  has: Name domain: char[40]
  has: Rank domain: char[10]
`)
	// PROFESSOR is declared both as a subtype (skeletal) and with its own
	// attributes — the standalone definition must be rejected as duplicate
	// only if declared twice as a full type. Here the contains statement
	// precedes, so the full definition collides.
	if err == nil {
		prof, ok := m.Type("PROFESSOR")
		if !ok {
			t.Fatal("PROFESSOR missing")
		}
		_ = prof
	}
	// Declare full type first, then hierarchy: inheritance must work.
	m, err = ker.Parse(`
object type PERSON
  has key: Id domain: integer
  has: Name domain: char[20]

object type PROFESSOR
  has: Name domain: char[40]
  has: Rank domain: char[10]

PERSON contains PROFESSOR, STUDENT
`)
	if err != nil {
		t.Fatal(err)
	}
	attrs, err := m.InheritedAttrs("PROFESSOR")
	if err != nil {
		t.Fatal(err)
	}
	if len(attrs) != 3 {
		t.Fatalf("inherited attrs = %v", attrs)
	}
	// Redefined Name shadows the supertype's char[20] version.
	for _, a := range attrs {
		if a.Name == "Name" && a.Domain != "char[40]" {
			t.Errorf("Name domain = %s, want subtype's char[40]", a.Domain)
		}
	}
	attrs, err = m.InheritedAttrs("STUDENT")
	if err != nil {
		t.Fatal(err)
	}
	if len(attrs) != 2 {
		t.Errorf("STUDENT inherits %d attrs, want 2", len(attrs))
	}
	if _, err := m.InheritedAttrs("NOPE"); err == nil {
		t.Error("InheritedAttrs of unknown type should error")
	}
}

func TestDomainSpecs(t *testing.T) {
	m, err := ker.Parse(`
domain AGE isa integer range [0..200]
domain GRADE isa integer set of {1, 2, 3}
object type EMP
  has key: Id domain: integer
  has: Age domain: AGE
  has: Grade domain: GRADE
  with Age in [18..65]
`)
	if err != nil {
		t.Fatal(err)
	}
	age, ok := m.Domain("AGE")
	if !ok || !age.HasRange {
		t.Fatalf("AGE = %+v", age)
	}
	if !age.Range.Contains(relation.Int(100)) || age.Range.Contains(relation.Int(201)) {
		t.Errorf("AGE range = %s", age.Range)
	}
	grade, ok := m.Domain("GRADE")
	if !ok || len(grade.Set) != 3 {
		t.Fatalf("GRADE = %+v", grade)
	}
	emp, _ := m.Type("EMP")
	drc, ok := emp.Constraints[0].(ker.DomainRangeConstraint)
	if !ok || drc.Attr != "Age" {
		t.Errorf("constraint = %v", emp.Constraints[0])
	}
}

func TestValidateErrors(t *testing.T) {
	if _, err := ker.Parse(`
object type A
  has key: X domain: NOPE
`); err == nil {
		t.Error("unknown attribute domain should fail validation")
	}
	if _, err := ker.Parse(`
object type A
  has key: X domain: integer
object type B
  has key: Y domain: integer
A contains B
B contains A
`); err == nil {
		t.Error("hierarchy cycle should fail validation")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"object type",                       // missing name
		"object type T",                     // no attributes
		"object type T has",                 // incomplete attribute
		"object type T has key: X",          // missing domain
		"domain D",                          // missing isa
		"domain D isa NOPE",                 // unknown base
		"domain D isa integer range [1..",   // unterminated range
		"domain D isa integer set of {1, 2", // unterminated set
		"bogus",                             // unknown statement
		"/* unterminated",                   // unterminated comment
		`object type T has key: X domain: integer with if X = 1 then 2 <= Y <= 3`,       // non-point consequence
		`object type T has key: X domain: integer with if x isa T and X = 1 then Y = 2`, // roles in constraint rule
	}
	for _, src := range bad {
		if _, err := ker.Parse(src); err == nil {
			t.Errorf("ker.Parse(%q): expected error", src)
		}
	}
}

func TestDuplicateDefinitions(t *testing.T) {
	if _, err := ker.Parse("domain D isa integer\ndomain D isa integer"); err == nil {
		t.Error("duplicate domain should error")
	}
	if _, err := ker.Parse(`
object type T
  has key: X domain: integer
object type T
  has key: X domain: integer
`); err == nil {
		t.Error("duplicate object type should error")
	}
}

func TestRenderType(t *testing.T) {
	m := parseShipSchema(t)
	cls, _ := m.Type("CLASS")
	out := ker.RenderType(cls)
	for _, want := range []string{"object type CLASS", "has key: Class", "domain: integer", "with if"} {
		if !strings.Contains(out, want) {
			t.Errorf("RenderType missing %q:\n%s", want, out)
		}
	}
}

func TestRenderHierarchy(t *testing.T) {
	m := parseShipSchema(t)
	out := m.RenderHierarchy("SONAR")
	for _, want := range []string{"SONAR", "BQQ", "BQS", "TACTAS", "└──"} {
		if !strings.Contains(out, want) {
			t.Errorf("RenderHierarchy missing %q:\n%s", want, out)
		}
	}
	if m.RenderHierarchy("NOPE") != "" {
		t.Error("unknown root should render empty")
	}
}

func TestRenderModel(t *testing.T) {
	m := parseShipSchema(t)
	out := m.RenderModel()
	for _, want := range []string{"domains:", "object type SUBMARINE", "object type INSTALL", "C1301"} {
		if !strings.Contains(out, want) {
			t.Errorf("RenderModel missing %q", want)
		}
	}
}

func TestDerivationSpec(t *testing.T) {
	m, err := ker.Parse(`
object type SUBMARINE
  has key: Id domain: char[7]
  has: ShipType domain: char[4]
SSBN isa SUBMARINE with ShipType = "SSBN"
`)
	if err != nil {
		t.Fatal(err)
	}
	ssbn, ok := m.Type("SSBN")
	if !ok {
		t.Fatal("SSBN missing")
	}
	if len(ssbn.Derivation) != 1 || ssbn.Derivation[0].String() != `ShipType = "SSBN"` {
		t.Errorf("derivation = %v", ssbn.Derivation)
	}
	if !m.IsSubtypeOf("SSBN", "SUBMARINE") {
		t.Error("SSBN should be a subtype of SUBMARINE")
	}
	out := m.RenderHierarchy("SUBMARINE")
	if !strings.Contains(out, `with ShipType = "SSBN"`) {
		t.Errorf("hierarchy should show derivation:\n%s", out)
	}
}

func containsAnyFold(list []string, s string) bool {
	for _, x := range list {
		if strings.EqualFold(x, s) {
			return true
		}
	}
	return false
}
