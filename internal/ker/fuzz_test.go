package ker_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"intensional/internal/ker"
)

// TestKERParseNeverPanicsProperty feeds random token soup to the KER
// parser: rejection is fine, panicking is not.
func TestKERParseNeverPanicsProperty(t *testing.T) {
	words := []string{
		"domain", "isa", "object", "type", "has", "key", "domain:", "with",
		"contains", "if", "then", "and", "in", "range", "set", "of",
		"char", "[", "]", "{", "}", "(", ")", ",", ":", "..", ".",
		"=", "<=", ">=", "T", "X", "x", "integer", `"v"`, "1", "2.5", "/*", "*/",
	}
	prop := func(seed int64) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				ok = false
			}
		}()
		rr := rand.New(rand.NewSource(seed))
		n := rr.Intn(30)
		src := ""
		for i := 0; i < n; i++ {
			src += words[rr.Intn(len(words))] + " "
		}
		_, _ = ker.Parse(src)
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// FuzzParse feeds arbitrary text to the KER DDL parser. The seed
// corpus in testdata/fuzz/FuzzParse covers each production of the
// Appendix A grammar (domain definitions with range/set refinements,
// object types with key/attribute/constraint clauses, contains
// statements with structure rules, comments) plus malformed variants;
// plain `go test` replays it, `go test -fuzz=FuzzParse` mutates it.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"domain NAME isa char[20]",
		"domain AGE isa integer range [0..200]",
		"domain GRADE isa integer set of {1, 2, 3}",
		"object type CLASS\n  has key: Class domain: char[4]\n  has: Displacement domain: integer\n  with\n    if \"0101\" <= Class <= \"0103\" then Type = \"SSBN\"",
		"CLASS contains SSBN, SSN\n  with\n    if x isa CLASS and 2145 <= x.Displacement <= 6955 then x isa SSN",
		"/* comment */ domain X isa integer",
		"object type",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<16 {
			t.Skip("oversized input")
		}
		// Rejection is fine; panicking is the bug.
		_, _ = ker.Parse(src)
	})
}

// TestKERParseNeverPanicsOnBytes drives the lexer with raw random bytes.
func TestKERParseNeverPanicsOnBytes(t *testing.T) {
	prop := func(seed int64) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				ok = false
			}
		}()
		rr := rand.New(rand.NewSource(seed))
		n := rr.Intn(80)
		b := make([]byte, n)
		for i := range b {
			b[i] = byte(rr.Intn(128))
		}
		_, _ = ker.Parse(string(b))
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
