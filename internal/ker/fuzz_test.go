package ker_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"intensional/internal/ker"
)

// TestKERParseNeverPanicsProperty feeds random token soup to the KER
// parser: rejection is fine, panicking is not.
func TestKERParseNeverPanicsProperty(t *testing.T) {
	words := []string{
		"domain", "isa", "object", "type", "has", "key", "domain:", "with",
		"contains", "if", "then", "and", "in", "range", "set", "of",
		"char", "[", "]", "{", "}", "(", ")", ",", ":", "..", ".",
		"=", "<=", ">=", "T", "X", "x", "integer", `"v"`, "1", "2.5", "/*", "*/",
	}
	prop := func(seed int64) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				ok = false
			}
		}()
		rr := rand.New(rand.NewSource(seed))
		n := rr.Intn(30)
		src := ""
		for i := 0; i < n; i++ {
			src += words[rr.Intn(len(words))] + " "
		}
		_, _ = ker.Parse(src)
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestKERParseNeverPanicsOnBytes drives the lexer with raw random bytes.
func TestKERParseNeverPanicsOnBytes(t *testing.T) {
	prop := func(seed int64) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				ok = false
			}
		}()
		rr := rand.New(rand.NewSource(seed))
		n := rr.Intn(80)
		b := make([]byte, n)
		for i := range b {
			b[i] = byte(rr.Intn(128))
		}
		_, _ = ker.Parse(string(b))
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
