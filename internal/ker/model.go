// Package ker implements the Knowledge-based Entity-Relationship data
// model of Section 2: domains (standard, derived, object), object types
// with has/has-key attributes and with-constraints, type hierarchies via
// isa/contains with derivation specifications, and the three constraint
// forms of the Appendix A BNF (domain range constraints, constraint
// rules, structure rules). A recursive-descent parser reads the DDL and a
// renderer prints the textual KER diagrams of Figures 1–5.
package ker

import (
	"fmt"
	"sort"
	"strings"

	"intensional/internal/relation"
	"intensional/internal/rules"
)

// DomainKind discriminates domain definitions.
type DomainKind uint8

const (
	// DomainStandard is one of the built-in domains (string, integer,
	// real, date, char[n]).
	DomainStandard DomainKind = iota
	// DomainDerived is defined on another domain, optionally restricted
	// by a range or set specification.
	DomainDerived
	// DomainObject is an attribute domain that is itself an object type
	// (e.g. SUBMARINE has Class domain CLASS).
	DomainObject
)

// Domain is a value domain.
type Domain struct {
	Name    string
	Kind    DomainKind
	Base    string        // for derived domains: the parent domain's name
	Storage relation.Type // resolved base storage type
	CharLen int           // for char[n]; 0 when unbounded

	// Optional domain specification.
	HasRange bool
	Range    rules.Interval
	Set      []relation.Value
}

// Attribute is one has/has-key property of an object type.
type Attribute struct {
	Name   string
	Domain string // domain name (standard, derived, or an object type)
	Key    bool
}

// Cond is an attribute condition inside a constraint rule: Lo <= attr <=
// Hi, with point conditions for equality.
type Cond struct {
	Var  string // optional role variable ("x.Displacement"); empty for bare attributes
	Attr string
	Lo   relation.Value
	Hi   relation.Value
}

// IsPoint reports whether the condition pins a single value.
func (c Cond) IsPoint() bool { return c.Lo.Equal(c.Hi) }

// Ref renders the attribute reference ("x.Displacement" or "Displacement").
func (c Cond) Ref() string {
	if c.Var == "" {
		return c.Attr
	}
	return c.Var + "." + c.Attr
}

// String renders the condition the way the paper writes clauses.
func (c Cond) String() string {
	if c.IsPoint() {
		return fmt.Sprintf("%s = %s", c.Ref(), c.Lo.GoString())
	}
	return fmt.Sprintf("%s <= %s <= %s", c.Lo.GoString(), c.Ref(), c.Hi.GoString())
}

// Constraint is a with-clause item.
type Constraint interface {
	constraint()
	String() string
}

// DomainRangeConstraint is "Attr in [lo..hi]".
type DomainRangeConstraint struct {
	Attr  string
	Range rules.Interval
}

// ConstraintRule is "if conds then Attr = value" over the attributes of a
// single object type.
type ConstraintRule struct {
	LHS []Cond
	RHS Cond
}

// Role is a variable declaration in a structure rule ("x isa SUBMARINE").
type Role struct {
	Var  string
	Type string
}

// StructureRule is "if roles and conds then var isa Type" — the form that
// classifies instances into subtypes, possibly across a relationship.
type StructureRule struct {
	Roles    []Role
	LHS      []Cond
	ConclVar string
	ConclIsa string
}

func (DomainRangeConstraint) constraint() {}
func (ConstraintRule) constraint()        {}
func (StructureRule) constraint()         {}

func (d DomainRangeConstraint) String() string {
	return fmt.Sprintf("%s in %s", d.Attr, d.Range)
}

func (r ConstraintRule) String() string {
	parts := make([]string, len(r.LHS))
	for i, c := range r.LHS {
		parts[i] = c.String()
	}
	return fmt.Sprintf("if %s then %s", strings.Join(parts, " and "), r.RHS)
}

func (r StructureRule) String() string {
	var parts []string
	for _, role := range r.Roles {
		parts = append(parts, role.Var+" isa "+role.Type)
	}
	for _, c := range r.LHS {
		parts = append(parts, c.String())
	}
	return fmt.Sprintf("if %s then %s isa %s", strings.Join(parts, " and "), r.ConclVar, r.ConclIsa)
}

// ObjectType is an entity or relationship type (both are object types in
// KER, modelled with the has/with construct).
type ObjectType struct {
	Name        string
	Attrs       []Attribute
	Constraints []Constraint

	// Hierarchy links (generalisation/specialisation).
	Supertypes []string
	Subtypes   []string

	// Derivation specification for a derived subtype ("SSBN isa SUBMARINE
	// with ShipType = SSBN").
	Derivation []Cond
}

// Attr returns the named attribute.
func (o *ObjectType) Attr(name string) (Attribute, bool) {
	for _, a := range o.Attrs {
		if strings.EqualFold(a.Name, name) {
			return a, true
		}
	}
	return Attribute{}, false
}

// KeyAttrs returns the primary-key attributes.
func (o *ObjectType) KeyAttrs() []Attribute {
	var out []Attribute
	for _, a := range o.Attrs {
		if a.Key {
			out = append(out, a)
		}
	}
	return out
}

// Instance is one has-instance (classification) declaration: a named
// tuple of attribute values belonging to an object type.
type Instance struct {
	Type   string
	Values map[string]relation.Value // lower(attribute) → value
}

// Model is a parsed KER schema: the domains, object types, the type
// hierarchy they form, and any instances declared with the has-instance
// construct.
type Model struct {
	domains   map[string]*Domain
	types     map[string]*ObjectType
	order     []string // object type declaration order
	instances []Instance
}

// NewModel returns an empty model pre-populated with the standard domains.
func NewModel() *Model {
	m := &Model{
		domains: make(map[string]*Domain),
		types:   make(map[string]*ObjectType),
	}
	for _, d := range []*Domain{
		{Name: "string", Kind: DomainStandard, Storage: relation.TString},
		{Name: "integer", Kind: DomainStandard, Storage: relation.TInt},
		{Name: "real", Kind: DomainStandard, Storage: relation.TFloat},
		{Name: "date", Kind: DomainStandard, Storage: relation.TString},
	} {
		m.domains[d.Name] = d
	}
	return m
}

func lower(s string) string { return strings.ToLower(s) }

// AddDomain registers a domain definition.
func (m *Model) AddDomain(d *Domain) error {
	key := lower(d.Name)
	if _, dup := m.domains[key]; dup {
		return fmt.Errorf("ker: duplicate domain %q", d.Name)
	}
	m.domains[key] = d
	return nil
}

// Domain resolves a domain by name. char[n] domains are synthesised on
// demand.
func (m *Model) Domain(name string) (*Domain, bool) {
	key := lower(name)
	if d, ok := m.domains[key]; ok {
		return d, true
	}
	var n int
	if _, err := fmt.Sscanf(key, "char[%d]", &n); err == nil {
		d := &Domain{Name: key, Kind: DomainStandard, Storage: relation.TString, CharLen: n}
		m.domains[key] = d
		return d, true
	}
	return nil, false
}

// AddObjectType registers an object type. Creating a type twice merges
// attribute-less hierarchy declarations into the existing definition.
func (m *Model) AddObjectType(o *ObjectType) error {
	key := lower(o.Name)
	if _, dup := m.types[key]; dup {
		return fmt.Errorf("ker: duplicate object type %q", o.Name)
	}
	m.types[key] = o
	m.order = append(m.order, o.Name)
	return nil
}

// Type resolves an object type by name.
func (m *Model) Type(name string) (*ObjectType, bool) {
	o, ok := m.types[lower(name)]
	return o, ok
}

// ensureType returns the named type, creating a skeletal one if needed —
// used by hierarchy declarations whose subtypes have no standalone
// definition (e.g. "SONAR contains BQQ, BQS, TACTAS").
func (m *Model) ensureType(name string) *ObjectType {
	if o, ok := m.Type(name); ok {
		return o
	}
	o := &ObjectType{Name: name}
	m.types[lower(name)] = o
	m.order = append(m.order, name)
	return o
}

// Types returns the object types in declaration order.
func (m *Model) Types() []*ObjectType {
	out := make([]*ObjectType, len(m.order))
	for i, n := range m.order {
		out[i] = m.types[lower(n)]
	}
	return out
}

// Domains returns the non-standard domains sorted by name.
func (m *Model) Domains() []*Domain {
	var out []*Domain
	for _, d := range m.domains {
		if d.Kind != DomainStandard {
			out = append(out, d)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// LinkSubtype records "sub isa super" in both directions.
func (m *Model) LinkSubtype(super, sub string) {
	sup := m.ensureType(super)
	s := m.ensureType(sub)
	if !containsFold(sup.Subtypes, sub) {
		sup.Subtypes = append(sup.Subtypes, sub)
	}
	if !containsFold(s.Supertypes, super) {
		s.Supertypes = append(s.Supertypes, super)
	}
}

func containsFold(list []string, s string) bool {
	for _, x := range list {
		if strings.EqualFold(x, s) {
			return true
		}
	}
	return false
}

// IsSubtypeOf reports whether sub is a (transitive) subtype of super.
func (m *Model) IsSubtypeOf(sub, super string) bool {
	if strings.EqualFold(sub, super) {
		return true
	}
	o, ok := m.Type(sub)
	if !ok {
		return false
	}
	for _, p := range o.Supertypes {
		if m.IsSubtypeOf(p, super) {
			return true
		}
	}
	return false
}

// InheritedAttrs returns the type's attributes including those inherited
// from all supertypes. An attribute redefined in the subtype shadows the
// supertype's definition, as Section 2 requires.
func (m *Model) InheritedAttrs(name string) ([]Attribute, error) {
	o, ok := m.Type(name)
	if !ok {
		return nil, fmt.Errorf("ker: no object type %q", name)
	}
	seen := map[string]bool{}
	var out []Attribute
	var visit func(t *ObjectType)
	visit = func(t *ObjectType) {
		for _, a := range t.Attrs {
			if !seen[lower(a.Name)] {
				seen[lower(a.Name)] = true
				out = append(out, a)
			}
		}
		for _, p := range t.Supertypes {
			if pt, ok := m.Type(p); ok {
				visit(pt)
			}
		}
	}
	visit(o)
	return out, nil
}

// AddInstance records a has-instance declaration.
func (m *Model) AddInstance(inst Instance) error {
	o, ok := m.Type(inst.Type)
	if !ok {
		return fmt.Errorf("ker: instance of unknown object type %q", inst.Type)
	}
	for attr := range inst.Values {
		if _, ok := o.Attr(attr); !ok {
			return fmt.Errorf("ker: instance of %s assigns unknown attribute %q", inst.Type, attr)
		}
	}
	m.instances = append(m.instances, inst)
	return nil
}

// Instances returns the declared instances of the named object type in
// declaration order.
func (m *Model) Instances(typeName string) []Instance {
	var out []Instance
	for _, inst := range m.instances {
		if strings.EqualFold(inst.Type, typeName) {
			out = append(out, inst)
		}
	}
	return out
}

// RootTypes returns the object types with no supertype, in declaration
// order — the roots of the type hierarchies.
func (m *Model) RootTypes() []*ObjectType {
	var out []*ObjectType
	for _, o := range m.Types() {
		if len(o.Supertypes) == 0 {
			out = append(out, o)
		}
	}
	return out
}

// Validate checks referential integrity: every attribute domain resolves,
// every constraint names declared attributes, and the hierarchy is
// acyclic.
func (m *Model) Validate() error {
	for _, o := range m.Types() {
		for _, a := range o.Attrs {
			if _, ok := m.Domain(a.Domain); ok {
				continue
			}
			if _, ok := m.Type(a.Domain); ok {
				continue // object domain
			}
			return fmt.Errorf("ker: %s.%s: unknown domain %q", o.Name, a.Name, a.Domain)
		}
	}
	// Cycle check via DFS colouring.
	state := map[string]int{} // 0 unvisited, 1 in-progress, 2 done
	var visit func(name string) error
	visit = func(name string) error {
		switch state[lower(name)] {
		case 1:
			return fmt.Errorf("ker: type hierarchy cycle through %q", name)
		case 2:
			return nil
		}
		state[lower(name)] = 1
		if o, ok := m.Type(name); ok {
			for _, sub := range o.Subtypes {
				if err := visit(sub); err != nil {
					return err
				}
			}
		}
		state[lower(name)] = 2
		return nil
	}
	for _, o := range m.Types() {
		if err := visit(o.Name); err != nil {
			return err
		}
	}
	return nil
}
