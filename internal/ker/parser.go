package ker

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"

	"intensional/internal/relation"
	"intensional/internal/rules"
)

// The DDL accepted here is the Appendix A grammar in the concrete spelling
// Appendix B uses:
//
//	domain CLASS_NAME isa NAME
//	domain AGE isa integer range [0..200]
//	domain GRADE isa integer set of {1, 2, 3}
//
//	object type CLASS
//	  has key: Class domain: char[4]
//	  has: Type domain: TYPE
//	  has: Displacement domain: integer
//	  with Displacement in [2000..30000],
//	       if "0101" <= Class <= "0103" then Type = "SSBN"
//
//	CLASS contains SSBN, SSN
//	  with if x isa CLASS and 2145 <= x.Displacement <= 6955 then x isa SSN
//
//	SSBN isa SUBMARINE with ShipType = "SSBN"
//
// Colons after has/key/domain are optional; /* ... */ comments are
// ignored; with-constraints are comma-separated per the BNF.

type kTokKind uint8

const (
	kEOF kTokKind = iota
	kIdent
	kNumber
	kString
	kOp     // = <= >= < >
	kLBrack // [
	kRBrack // ]
	kLBrace // {
	kRBrace // }
	kLParen // (
	kRParen // )
	kComma
	kColon
	kDot
	kDotDot
)

type kTok struct {
	kind kTokKind
	text string
	line int
}

func (t kTok) String() string {
	if t.kind == kEOF {
		return "end of schema"
	}
	return strconv.Quote(t.text)
}

func lexKER(src string) ([]kTok, error) {
	var out []kTok
	line := 1
	i := 0
	peek := func(n int) byte {
		if i+n < len(src) {
			return src[i+n]
		}
		return 0
	}
	for i < len(src) {
		c := src[i]
		switch {
		case c == '\n':
			line++
			i++
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '/' && peek(1) == '*':
			j := i + 2
			for j+1 < len(src) && !(src[j] == '*' && src[j+1] == '/') {
				if src[j] == '\n' {
					line++
				}
				j++
			}
			if j+1 >= len(src) {
				return nil, fmt.Errorf("ker: line %d: unterminated comment", line)
			}
			i = j + 2
		case c == '[':
			out = append(out, kTok{kLBrack, "[", line})
			i++
		case c == ']':
			out = append(out, kTok{kRBrack, "]", line})
			i++
		case c == '{':
			out = append(out, kTok{kLBrace, "{", line})
			i++
		case c == '}':
			out = append(out, kTok{kRBrace, "}", line})
			i++
		case c == '(':
			out = append(out, kTok{kLParen, "(", line})
			i++
		case c == ')':
			out = append(out, kTok{kRParen, ")", line})
			i++
		case c == ',':
			out = append(out, kTok{kComma, ",", line})
			i++
		case c == ':':
			out = append(out, kTok{kColon, ":", line})
			i++
		case c == '.':
			if peek(1) == '.' {
				out = append(out, kTok{kDotDot, "..", line})
				i += 2
			} else {
				out = append(out, kTok{kDot, ".", line})
				i++
			}
		case c == '=':
			out = append(out, kTok{kOp, "=", line})
			i++
		case c == '<':
			if peek(1) == '=' {
				out = append(out, kTok{kOp, "<=", line})
				i += 2
			} else {
				out = append(out, kTok{kOp, "<", line})
				i++
			}
		case c == '>':
			if peek(1) == '=' {
				out = append(out, kTok{kOp, ">=", line})
				i += 2
			} else {
				out = append(out, kTok{kOp, ">", line})
				i++
			}
		case c == '"' || c == '\'':
			quote := c
			j := i + 1
			var b strings.Builder
			for j < len(src) && src[j] != quote {
				if src[j] == '\n' {
					return nil, fmt.Errorf("ker: line %d: newline in string", line)
				}
				b.WriteByte(src[j])
				j++
			}
			if j >= len(src) {
				return nil, fmt.Errorf("ker: line %d: unterminated string", line)
			}
			out = append(out, kTok{kString, b.String(), line})
			i = j + 1
		case c >= '0' && c <= '9' || (c == '-' && peek(1) >= '0' && peek(1) <= '9'):
			j := i
			if src[j] == '-' {
				j++
			}
			for j < len(src) && (src[j] >= '0' && src[j] <= '9') {
				j++
			}
			// Fractional part, but not a ".." range separator.
			if j+1 < len(src) && src[j] == '.' && src[j+1] >= '0' && src[j+1] <= '9' {
				j++
				for j < len(src) && src[j] >= '0' && src[j] <= '9' {
					j++
				}
			}
			out = append(out, kTok{kNumber, src[i:j], line})
			i = j
		case unicode.IsLetter(rune(c)) || c == '_':
			j := i
			for j < len(src) && (unicode.IsLetter(rune(src[j])) || unicode.IsDigit(rune(src[j])) || src[j] == '_' || src[j] == '-') {
				j++
			}
			out = append(out, kTok{kIdent, src[i:j], line})
			i = j
		default:
			return nil, fmt.Errorf("ker: line %d: unexpected character %q", line, c)
		}
	}
	out = append(out, kTok{kind: kEOF, line: line})
	return out, nil
}

type kParser struct {
	toks  []kTok
	i     int
	model *Model
}

// Parse parses a KER schema definition into a validated model.
func Parse(src string) (*Model, error) {
	toks, err := lexKER(src)
	if err != nil {
		return nil, err
	}
	p := &kParser{toks: toks, model: NewModel()}
	for p.cur().kind != kEOF {
		if err := p.parseDefinition(); err != nil {
			return nil, err
		}
	}
	if err := p.model.Validate(); err != nil {
		return nil, err
	}
	return p.model, nil
}

func (p *kParser) cur() kTok  { return p.toks[p.i] }
func (p *kParser) next() kTok { t := p.toks[p.i]; p.i++; return t }

func (p *kParser) keyword(kw string) bool {
	t := p.cur()
	if t.kind == kIdent && strings.EqualFold(t.text, kw) {
		p.i++
		return true
	}
	return false
}

func (p *kParser) peekKeyword(n int, kw string) bool {
	if p.i+n >= len(p.toks) {
		return false
	}
	t := p.toks[p.i+n]
	return t.kind == kIdent && strings.EqualFold(t.text, kw)
}

func (p *kParser) expectIdent(what string) (string, error) {
	t := p.cur()
	if t.kind != kIdent {
		return "", fmt.Errorf("ker: line %d: expected %s, got %s", t.line, what, t)
	}
	p.i++
	return t.text, nil
}

func (p *kParser) errf(format string, args ...any) error {
	return fmt.Errorf("ker: line %d: %s", p.cur().line, fmt.Sprintf(format, args...))
}

func (p *kParser) parseDefinition() error {
	switch {
	case p.keyword("domain"):
		return p.parseDomain()
	case p.keyword("instance"):
		return p.parseInstance()
	case p.peekKeyword(0, "object") && p.peekKeyword(1, "type"):
		p.i += 2
		return p.parseObjectType()
	case p.cur().kind == kIdent && p.peekKeyword(1, "contains"):
		return p.parseContains()
	case p.cur().kind == kIdent && p.peekKeyword(1, "isa"):
		return p.parseIsa()
	default:
		return p.errf("expected a domain, object type, or hierarchy definition; got %s", p.cur())
	}
}

// parseDomainName reads a domain name, folding char[n] into one name.
func (p *kParser) parseDomainName() (string, error) {
	name, err := p.expectIdent("domain name")
	if err != nil {
		return "", err
	}
	if strings.EqualFold(name, "char") && p.cur().kind == kLBrack {
		p.i++
		t := p.cur()
		if t.kind != kNumber {
			return "", p.errf("expected length in char[...], got %s", t)
		}
		p.i++
		if p.cur().kind != kRBrack {
			return "", p.errf("expected ] after char length, got %s", p.cur())
		}
		p.i++
		return "char[" + t.text + "]", nil
	}
	return name, nil
}

func (p *kParser) parseDomain() error {
	if p.cur().kind == kColon { // tolerate "domain:" as in Appendix B
		p.i++
	}
	name, err := p.expectIdent("domain name")
	if err != nil {
		return err
	}
	if !p.keyword("isa") {
		return p.errf("expected isa in domain definition, got %s", p.cur())
	}
	base, err := p.parseDomainName()
	if err != nil {
		return err
	}
	baseDom, ok := p.model.Domain(base)
	if !ok {
		return p.errf("domain %s: unknown base domain %q", name, base)
	}
	d := &Domain{
		Name:    name,
		Kind:    DomainDerived,
		Base:    base,
		Storage: baseDom.Storage,
		CharLen: baseDom.CharLen,
	}
	switch {
	case p.keyword("range"):
		iv, err := p.parseRangeSpec()
		if err != nil {
			return err
		}
		d.HasRange, d.Range = true, iv
	case p.keyword("set"):
		if !p.keyword("of") {
			return p.errf("expected of after set, got %s", p.cur())
		}
		vals, err := p.parseSetSpec()
		if err != nil {
			return err
		}
		d.Set = vals
	}
	return p.model.AddDomain(d)
}

// parseRangeSpec parses "[lo..hi]" or "(lo..hi)" with mixed brackets.
func (p *kParser) parseRangeSpec() (rules.Interval, error) {
	openLo := false
	switch p.cur().kind {
	case kLBrack:
	default:
		return rules.Interval{}, p.errf("expected [ to open range, got %s", p.cur())
	}
	p.i++
	lo, err := p.parseValue()
	if err != nil {
		return rules.Interval{}, err
	}
	if p.cur().kind != kDotDot {
		return rules.Interval{}, p.errf("expected .. in range, got %s", p.cur())
	}
	p.i++
	hi, err := p.parseValue()
	if err != nil {
		return rules.Interval{}, err
	}
	if p.cur().kind != kRBrack {
		return rules.Interval{}, p.errf("expected ] to close range, got %s", p.cur())
	}
	p.i++
	iv := rules.Range(lo, hi)
	if openLo {
		iv.Lo.Open = true
	}
	return iv, nil
}

func (p *kParser) parseSetSpec() ([]relation.Value, error) {
	if p.cur().kind != kLBrace {
		return nil, p.errf("expected { to open set, got %s", p.cur())
	}
	p.i++
	var vals []relation.Value
	for {
		v, err := p.parseValue()
		if err != nil {
			return nil, err
		}
		vals = append(vals, v)
		if p.cur().kind == kComma {
			p.i++
			continue
		}
		break
	}
	if p.cur().kind != kRBrace {
		return nil, p.errf("expected } to close set, got %s", p.cur())
	}
	p.i++
	return vals, nil
}

// parseValue parses a constant: quoted string, number, or bare identifier
// (treated as a string, as the paper writes SSBN unquoted).
func (p *kParser) parseValue() (relation.Value, error) {
	t := p.cur()
	switch t.kind {
	case kString:
		p.i++
		return relation.String(t.text), nil
	case kIdent:
		p.i++
		return relation.String(t.text), nil
	case kNumber:
		p.i++
		if strings.Contains(t.text, ".") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return relation.Value{}, p.errf("bad number %q", t.text)
			}
			return relation.Float(f), nil
		}
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return relation.Value{}, p.errf("bad number %q", t.text)
		}
		return relation.Int(n), nil
	default:
		return relation.Value{}, p.errf("expected a constant, got %s", t)
	}
}

// parseInstance parses the has-instance (classification) construct:
//
//	instance of SUBMARINE (Id = "SSBN730", Name = "Rhode Island", Class = "0101")
//
// The object type must be declared before its instances.
func (p *kParser) parseInstance() error {
	if !p.keyword("of") {
		return p.errf("expected of after instance, got %s", p.cur())
	}
	typeName, err := p.expectIdent("object type name")
	if err != nil {
		return err
	}
	if p.cur().kind != kLParen {
		return p.errf("expected ( to open instance values, got %s", p.cur())
	}
	p.i++
	inst := Instance{Type: typeName, Values: map[string]relation.Value{}}
	for {
		attr, err := p.expectIdent("attribute name")
		if err != nil {
			return err
		}
		if !(p.cur().kind == kOp && p.cur().text == "=") {
			return p.errf("expected = after %s, got %s", attr, p.cur())
		}
		p.i++
		v, err := p.parseValue()
		if err != nil {
			return err
		}
		key := strings.ToLower(attr)
		if _, dup := inst.Values[key]; dup {
			return p.errf("instance of %s assigns %s twice", typeName, attr)
		}
		inst.Values[key] = v
		if p.cur().kind == kComma {
			p.i++
			continue
		}
		break
	}
	if p.cur().kind != kRParen {
		return p.errf("expected ) to close instance values, got %s", p.cur())
	}
	p.i++
	return p.model.AddInstance(inst)
}

func (p *kParser) parseObjectType() error {
	name, err := p.expectIdent("object type name")
	if err != nil {
		return err
	}
	o := &ObjectType{Name: name}
	for {
		if p.keyword("has") {
			a := Attribute{}
			if p.keyword("key") {
				a.Key = true
			}
			if p.cur().kind == kColon {
				p.i++
			}
			attrName, err := p.expectIdent("attribute name")
			if err != nil {
				return err
			}
			a.Name = attrName
			if !p.keyword("domain") {
				return p.errf("expected domain after attribute %s, got %s", attrName, p.cur())
			}
			if p.cur().kind == kColon {
				p.i++
			}
			dom, err := p.parseDomainName()
			if err != nil {
				return err
			}
			a.Domain = dom
			o.Attrs = append(o.Attrs, a)
			continue
		}
		break
	}
	if len(o.Attrs) == 0 {
		return p.errf("object type %s has no attributes", name)
	}
	if p.keyword("with") {
		cs, err := p.parseConstraints()
		if err != nil {
			return err
		}
		o.Constraints = cs
	}
	return p.model.AddObjectType(o)
}

func (p *kParser) parseConstraints() ([]Constraint, error) {
	var out []Constraint
	for {
		c, err := p.parseConstraint()
		if err != nil {
			return nil, err
		}
		out = append(out, c)
		if p.cur().kind == kComma {
			p.i++
			continue
		}
		// Per the paper's Appendix B, consecutive "if ... then ..." rules
		// may also follow each other without commas.
		if p.peekKeyword(0, "if") {
			continue
		}
		break
	}
	return out, nil
}

func (p *kParser) parseConstraint() (Constraint, error) {
	if p.keyword("if") {
		return p.parseRuleConstraint()
	}
	// Domain range constraint: Attr in [lo..hi].
	attr, err := p.expectIdent("attribute name")
	if err != nil {
		return nil, err
	}
	if !p.keyword("in") {
		return nil, p.errf("expected in after %s, got %s", attr, p.cur())
	}
	iv, err := p.parseRangeSpec()
	if err != nil {
		return nil, err
	}
	return DomainRangeConstraint{Attr: attr, Range: iv}, nil
}

// parseRuleConstraint parses the body after "if": either a constraint
// rule (conds then attr = const) or a structure rule (roles and conds
// then var isa Type).
func (p *kParser) parseRuleConstraint() (Constraint, error) {
	var roles []Role
	var conds []Cond
	for {
		// Role definition: ident isa Type.
		if p.cur().kind == kIdent && p.peekKeyword(1, "isa") {
			v := p.next().text
			p.i++ // isa
			typ, err := p.expectIdent("object type name")
			if err != nil {
				return nil, err
			}
			roles = append(roles, Role{Var: v, Type: typ})
		} else {
			c, err := p.parseCond()
			if err != nil {
				return nil, err
			}
			conds = append(conds, c)
		}
		if p.keyword("and") {
			continue
		}
		break
	}
	if !p.keyword("then") {
		return nil, p.errf("expected then, got %s", p.cur())
	}
	// Conclusion: "var isa Type" (structure rule) or "Attr = const".
	if p.cur().kind == kIdent && p.peekKeyword(1, "isa") {
		v := p.next().text
		p.i++ // isa
		typ, err := p.expectIdent("object type name")
		if err != nil {
			return nil, err
		}
		return StructureRule{Roles: roles, LHS: conds, ConclVar: v, ConclIsa: typ}, nil
	}
	rhs, err := p.parseCond()
	if err != nil {
		return nil, err
	}
	if !rhs.IsPoint() {
		return nil, p.errf("rule consequence must be an equality, got %s", rhs)
	}
	if len(roles) != 0 {
		return nil, p.errf("constraint rule must not declare roles")
	}
	return ConstraintRule{LHS: conds, RHS: rhs}, nil
}

// parseCond parses "lo <= ref <= hi" or "ref = const" (also accepting the
// reversed "const = ref" spelling).
func (p *kParser) parseCond() (Cond, error) {
	// Between form starts with a constant: value <= ref <= value.
	if p.cur().kind == kNumber || p.cur().kind == kString ||
		(p.cur().kind == kIdent && p.i+1 < len(p.toks) && p.toks[p.i+1].kind == kOp && p.toks[p.i+1].text == "<=") {
		lo, err := p.parseValue()
		if err != nil {
			return Cond{}, err
		}
		if !(p.cur().kind == kOp && p.cur().text == "<=") {
			return Cond{}, p.errf("expected <= after range lower bound, got %s", p.cur())
		}
		p.i++
		varName, attr, err := p.parseRef()
		if err != nil {
			return Cond{}, err
		}
		if !(p.cur().kind == kOp && p.cur().text == "<=") {
			return Cond{}, p.errf("expected <= after %s, got %s", attr, p.cur())
		}
		p.i++
		hi, err := p.parseValue()
		if err != nil {
			return Cond{}, err
		}
		return Cond{Var: varName, Attr: attr, Lo: lo, Hi: hi}, nil
	}
	// Equality form: ref = const.
	varName, attr, err := p.parseRef()
	if err != nil {
		return Cond{}, err
	}
	if !(p.cur().kind == kOp && p.cur().text == "=") {
		return Cond{}, p.errf("expected = after %s, got %s", attr, p.cur())
	}
	p.i++
	v, err := p.parseValue()
	if err != nil {
		return Cond{}, err
	}
	return Cond{Var: varName, Attr: attr, Lo: v, Hi: v}, nil
}

// parseRef parses "attr" or "var.attr".
func (p *kParser) parseRef() (varName, attr string, err error) {
	first, err := p.expectIdent("attribute reference")
	if err != nil {
		return "", "", err
	}
	if p.cur().kind == kDot {
		p.i++
		second, err := p.expectIdent("attribute name")
		if err != nil {
			return "", "", err
		}
		return first, second, nil
	}
	return "", first, nil
}

func (p *kParser) parseContains() error {
	super, err := p.expectIdent("object type name")
	if err != nil {
		return err
	}
	p.i++ // contains
	var subs []string
	for {
		sub, err := p.expectIdent("subtype name")
		if err != nil {
			return err
		}
		subs = append(subs, sub)
		if p.cur().kind == kComma {
			p.i++
			continue
		}
		break
	}
	p.model.ensureType(super)
	for _, sub := range subs {
		p.model.LinkSubtype(super, sub)
	}
	if p.keyword("with") {
		cs, err := p.parseConstraints()
		if err != nil {
			return err
		}
		o, _ := p.model.Type(super)
		o.Constraints = append(o.Constraints, cs...)
	}
	return nil
}

func (p *kParser) parseIsa() error {
	sub, err := p.expectIdent("subtype name")
	if err != nil {
		return err
	}
	p.i++ // isa
	super, err := p.expectIdent("supertype name")
	if err != nil {
		return err
	}
	p.model.LinkSubtype(super, sub)
	if p.keyword("with") {
		var conds []Cond
		for {
			c, err := p.parseCond()
			if err != nil {
				return err
			}
			conds = append(conds, c)
			if p.keyword("and") {
				continue
			}
			break
		}
		o, _ := p.model.Type(sub)
		o.Derivation = append(o.Derivation, conds...)
	}
	return nil
}
