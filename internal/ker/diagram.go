package ker

import (
	"fmt"
	"strings"
)

// RenderType prints one object type in the Figure 1 box format:
//
//	object type SUBMARINE
//	  has key: ShipId        domain: char[10]
//	  has:     ShipName      domain: char[20]
//	  with Displacement in [2000..30000]
func RenderType(o *ObjectType) string {
	var b strings.Builder
	fmt.Fprintf(&b, "object type %s\n", o.Name)
	width := 0
	for _, a := range o.Attrs {
		if len(a.Name) > width {
			width = len(a.Name)
		}
	}
	for _, a := range o.Attrs {
		label := "has:    "
		if a.Key {
			label = "has key:"
		}
		fmt.Fprintf(&b, "  %s %-*s domain: %s\n", label, width, a.Name, a.Domain)
	}
	for i, c := range o.Constraints {
		if i == 0 {
			b.WriteString("  with ")
		} else {
			b.WriteString("       ")
		}
		b.WriteString(c.String())
		b.WriteString("\n")
	}
	return b.String()
}

// RenderHierarchy prints the type hierarchy rooted at the named type as an
// indented tree (the Figure 2 picture), including derivation
// specifications:
//
//	SUBMARINE
//	├── SSBN  with ShipType = "SSBN"
//	│   ├── CLASS-0101
//	...
func (m *Model) RenderHierarchy(root string) string {
	var b strings.Builder
	o, ok := m.Type(root)
	if !ok {
		return ""
	}
	b.WriteString(o.Name)
	b.WriteString("\n")
	var walk func(t *ObjectType, prefix string)
	walk = func(t *ObjectType, prefix string) {
		for i, subName := range t.Subtypes {
			sub, ok := m.Type(subName)
			if !ok {
				continue
			}
			connector, childPrefix := "├── ", prefix+"│   "
			if i == len(t.Subtypes)-1 {
				connector, childPrefix = "└── ", prefix+"    "
			}
			b.WriteString(prefix + connector + sub.Name)
			if len(sub.Derivation) > 0 {
				conds := make([]string, len(sub.Derivation))
				for j, c := range sub.Derivation {
					conds[j] = c.String()
				}
				b.WriteString("  with " + strings.Join(conds, " and "))
			}
			b.WriteString("\n")
			walk(sub, childPrefix)
		}
	}
	walk(o, "")
	return b.String()
}

// RenderModel prints the whole schema: domains, object types, and the
// hierarchies from each root — the textual equivalent of the Figure 4 KER
// diagram.
func (m *Model) RenderModel() string {
	var b strings.Builder
	doms := m.Domains()
	if len(doms) > 0 {
		b.WriteString("domains:\n")
		for _, d := range doms {
			fmt.Fprintf(&b, "  domain %s isa %s", d.Name, d.Base)
			if d.HasRange {
				fmt.Fprintf(&b, " range %s", d.Range)
			}
			if len(d.Set) > 0 {
				parts := make([]string, len(d.Set))
				for i, v := range d.Set {
					parts[i] = v.String()
				}
				fmt.Fprintf(&b, " set of {%s}", strings.Join(parts, ", "))
			}
			b.WriteString("\n")
		}
		b.WriteString("\n")
	}
	for _, o := range m.Types() {
		if len(o.Attrs) == 0 {
			continue // skeletal subtypes render inside hierarchies
		}
		b.WriteString(RenderType(o))
		b.WriteString("\n")
	}
	for _, root := range m.RootTypes() {
		if len(root.Subtypes) == 0 {
			continue
		}
		b.WriteString(m.RenderHierarchy(root.Name))
		b.WriteString("\n")
	}
	return b.String()
}
