// Package experiments regenerates every table, figure, and example of
// the paper's evaluation (see DESIGN.md's per-experiment index) plus the
// ablations. Each experiment writes a self-describing report to the
// given writer; cmd/experiments exposes them on the command line.
package experiments

import (
	"fmt"
	"io"

	"strings"

	"intensional/internal/answer"
	"intensional/internal/baseline"
	"intensional/internal/core"
	"intensional/internal/id3"
	"intensional/internal/induct"
	"intensional/internal/infer"
	"intensional/internal/ker"
	"intensional/internal/query"
	"intensional/internal/relation"
	"intensional/internal/rules"
	"intensional/internal/semopt"
	"intensional/internal/shipdb"
	"intensional/internal/storage"
	"intensional/internal/synth"
)

// The paper's three example queries (Section 6).
const (
	Example1SQL = `SELECT SUBMARINE.ID, SUBMARINE.NAME, SUBMARINE.CLASS, CLASS.TYPE
FROM SUBMARINE, CLASS
WHERE SUBMARINE.CLASS = CLASS.CLASS
AND CLASS.DISPLACEMENT > 8000`

	Example2SQL = `SELECT SUBMARINE.NAME, SUBMARINE.CLASS
FROM SUBMARINE, CLASS
WHERE SUBMARINE.CLASS = CLASS.CLASS
AND CLASS.TYPE = "SSBN"`

	Example3SQL = `SELECT SUBMARINE.NAME, SUBMARINE.CLASS, CLASS.TYPE
FROM SUBMARINE, CLASS, INSTALL
WHERE SUBMARINE.CLASS = CLASS.CLASS
AND SUBMARINE.ID = INSTALL.SHIP
AND INSTALL.SONAR = "BQS-04"`
)

// An experiment regenerates one paper artifact.
type experiment struct {
	ID    string
	Title string
	Run   func(w io.Writer) error
}

// All lists every experiment in the DESIGN.md index order.
func All() []string {
	ids := make([]string, len(registry))
	for i, e := range registry {
		ids[i] = e.ID
	}
	return ids
}

// Title returns an experiment's title.
func Title(id string) string {
	for _, e := range registry {
		if strings.EqualFold(e.ID, id) {
			return e.Title
		}
	}
	return ""
}

// Run executes one experiment by ID.
func Run(id string, w io.Writer) error {
	for _, e := range registry {
		if strings.EqualFold(e.ID, id) {
			fmt.Fprintf(w, "=== %s: %s ===\n\n", e.ID, e.Title)
			if err := e.Run(w); err != nil {
				return fmt.Errorf("experiment %s: %w", e.ID, err)
			}
			fmt.Fprintln(w)
			return nil
		}
	}
	return fmt.Errorf("experiments: unknown experiment %q (known: %s)", id, strings.Join(All(), ", "))
}

// RunAll executes every experiment in order.
func RunAll(w io.Writer) error {
	for _, e := range registry {
		if err := Run(e.ID, w); err != nil {
			return err
		}
	}
	return nil
}

var registry = []experiment{
	{"E1", "Section 6 induced rule set (R1-R17)", runE1},
	{"E2", "Example 1: forward inference (Displacement > 8000)", runE2},
	{"E3", "Example 2: backward inference (Type = SSBN) and the Nc trade-off", runE3},
	{"E4", "Example 3: combined inference (Sonar = BQS-04)", runE4},
	{"E5", "Table 1: classification characteristics of navy battleships", runE5},
	{"E6", "Figure 5: type hierarchy with induced rules for SUBMARINE", runE6},
	{"E7", "Figures 1-4: KER representation of the ship database schema", runE7},
	{"E8", "Section 5.2.2: rule relation encoding", runE8},
	{"A1", "Ablation: pruning threshold Nc sweep", runA1},
	{"A2", "Ablation: forward vs backward vs combined inference", runA2},
	{"A3", "Ablation: induced rules vs integrity-constraint baseline", runA3},
	{"A4", "Inter-object knowledge: the VISIT draft constraint (Section 3.1)", runA4},
	{"A5", "Ablation: decision-tree ILS (Section 3.2, Quinlan-style) vs range induction", runA5},
	{"A6", "Semantic query optimization from induced rules ([CHU90]/[KING81])", runA6},
}

// shipSystem builds the standard test bed with rules induced at nc.
func shipSystem(nc int) (*core.System, error) {
	cat := shipdb.Catalog()
	d, err := shipdb.Dictionary(cat)
	if err != nil {
		return nil, err
	}
	sys := core.New(cat, d)
	if _, err := sys.Induce(induct.Options{Nc: nc}); err != nil {
		return nil, err
	}
	return sys, nil
}

func runE1(w io.Writer) error {
	sys, err := shipSystem(3)
	if err != nil {
		return err
	}
	induced := sys.Rules()
	fmt.Fprintf(w, "Induced rule set over the Appendix C instance (Nc = 3):\n\n")
	for _, r := range induced.Rules() {
		fmt.Fprintf(w, "  R%-3d %-70s (support %d)\n", r.ID, r.String(), r.Support)
	}

	paper := shipdb.PaperRules()
	fmt.Fprintf(w, "\nComparison against the paper's printed list (17 rules):\n")
	entailed, missing := 0, []string{}
	for i, want := range paper.Rules() {
		ok := entails(induced, want)
		switch {
		case ok:
			entailed++
		case i == 13:
			fmt.Fprintf(w, "  R14 %-66s -- pruned at Nc=3 (support 1, same fate as R_new)\n", want.String())
		default:
			missing = append(missing, want.String())
		}
	}
	fmt.Fprintf(w, "  entailed: %d/17 (R14 requires Nc=1; rerun with -e A1)\n", entailed)
	for _, m := range missing {
		fmt.Fprintf(w, "  MISSING: %s\n", m)
	}
	fmt.Fprintf(w, "  note: R17 is induced in the stronger merged form (BQQ-8..BQS-04),\n")
	fmt.Fprintf(w, "  and two extra support>=3 runs appear that the paper's list omits.\n")
	return nil
}

func entails(set *rules.Set, want *rules.Rule) bool {
	for _, r := range set.Rules() {
		if len(r.LHS) != 1 || len(want.LHS) != 1 {
			continue
		}
		if !r.RHS.Attr.EqualFold(want.RHS.Attr) || !r.RHS.Lo.Equal(want.RHS.Lo) || !r.RHS.Hi.Equal(want.RHS.Hi) {
			continue
		}
		if r.LHS[0].Attr.EqualFold(want.LHS[0].Attr) &&
			r.LHS[0].Interval().Subsumes(want.LHS[0].Interval()) {
			return true
		}
	}
	return false
}

func runExample(w io.Writer, sys *core.System, sql string, mode answer.Mode, label string) error {
	fmt.Fprintf(w, "Query:\n%s\n\n", indent(sql, "  "))
	resp, err := sys.Query(sql, mode)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Extensional answer (%d tuples):\n%s\n", resp.Extensional.Len(), resp.Extensional)
	fmt.Fprintf(w, "Intensional answer (%s):\n%s\n", label, indent(resp.Intensional.Text(), "  "))
	return nil
}

func runE2(w io.Writer) error {
	sys, err := shipSystem(3)
	if err != nil {
		return err
	}
	if err := runExample(w, sys, Example1SQL, answer.ForwardOnly, "forward inference"); err != nil {
		return err
	}
	fmt.Fprintf(w, "\nPaper's A_I: \"Ship type SSBN has displacement greater than 8000\".\n")
	return nil
}

func runE3(w io.Writer) error {
	sys, err := shipSystem(3)
	if err != nil {
		return err
	}
	if err := runExample(w, sys, Example2SQL, answer.BackwardOnly, "backward inference"); err != nil {
		return err
	}
	fmt.Fprintf(w, "\nPaper's A_I: \"Ship Classes in the range of 0101 to 0103 are SSBN.\"\n")
	fmt.Fprintf(w, "Note the answer is incomplete: class 1301 (Typhoon) is also SSBN but the\n")
	fmt.Fprintf(w, "single-instance rule R_new is pruned. Re-inducing with Nc = 1:\n\n")

	sys1, err := shipSystem(1)
	if err != nil {
		return err
	}
	resp, err := sys1.Query(Example2SQL, answer.BackwardOnly)
	if err != nil {
		return err
	}
	for _, line := range resp.Intensional.Lines {
		if strings.Contains(line, "1301") || strings.Contains(line, "0101") {
			fmt.Fprintf(w, "  %s\n", line)
		}
	}
	fmt.Fprintf(w, "\nWith R_new maintained the intensional answer is complete, as Section 6 notes.\n")
	return nil
}

func runE4(w io.Writer) error {
	sys, err := shipSystem(3)
	if err != nil {
		return err
	}
	if err := runExample(w, sys, Example3SQL, answer.Combined, "combined forward + backward inference"); err != nil {
		return err
	}
	fmt.Fprintf(w, "\nPaper's A_I: \"Ship type SSN with class 0208 to 0215 is equipped with sonar BQS-04.\"\n")
	return nil
}

func runE5(w io.Writer) error {
	cfg := synth.FleetConfig{ClassesPerType: 4, ShipsPerClass: 3, Seed: 1991}
	cat := synth.Fleet(cfg)
	d, err := synth.FleetDictionary(cat)
	if err != nil {
		return err
	}
	cls, err := cat.Get(synth.FleetClass)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Synthetic fleet: %d classes x %d ships per class, seed %d\n",
		cfg.ClassesPerType, cfg.ShipsPerClass, cfg.Seed)
	fmt.Fprintf(w, "(the paper's SDC/UNISYS database is proprietary; the generator draws\n")
	fmt.Fprintf(w, "classes from Table 1's published displacement ranges)\n\n")

	in := induct.New(d, induct.Options{})
	chars, err := in.InduceCharacteristics(cls, "Type", "Displacement",
		rules.Attr(synth.FleetClass, "Type"), rules.Attr(synth.FleetClass, "Displacement"))
	if err != nil {
		return err
	}
	byType := map[string]*rules.Rule{}
	for _, r := range chars {
		byType[r.LHS[0].Lo.Str()] = r
	}
	fmt.Fprintf(w, "%-11s %-5s %-37s %-22s %s\n", "Category", "Type", "Type Name", "Induced Displacement", "Table 1")
	ok := true
	for _, st := range synth.Table1 {
		r := byType[st.Type]
		induced := "(missing)"
		if r != nil {
			induced = fmt.Sprintf("%s - %s", r.RHS.Lo, r.RHS.Hi)
		}
		paper := fmt.Sprintf("%d - %d", st.MinDisp, st.MaxDisp)
		match := "match"
		if induced != paper {
			match, ok = "MISMATCH", false
		}
		fmt.Fprintf(w, "%-11s %-5s %-37s %-22s %s  [%s]\n",
			st.Category, st.Type, st.TypeName, induced, paper, match)
	}
	if ok {
		fmt.Fprintf(w, "\nAll 12 type ranges match Table 1 exactly.\n")
	}
	return nil
}

func runE6(w io.Writer) error {
	m, err := ker.Parse(shipdb.KERSchema)
	if err != nil {
		return err
	}
	sys, err := shipSystem(3)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Type hierarchy (CLASS level of the ship hierarchy):\n\n%s\n",
		indent(m.RenderHierarchy("CLASS"), "  "))
	fmt.Fprintf(w, "Induced rules attached to the hierarchy (Figure 5's with-clause):\n\n")
	for _, r := range sys.Rules().Rules() {
		if r.RHS.Attr.EqualFold(rules.Attr("CLASS", "Type")) &&
			r.LHS[0].Attr.EqualFold(rules.Attr("CLASS", "Displacement")) {
			fmt.Fprintf(w, "  if %s then x isa %s\n", r.LHS[0], r.RHS.Lo)
		}
	}
	return nil
}

func runE7(w io.Writer) error {
	m, err := ker.Parse(shipdb.KERSchema)
	if err != nil {
		return err
	}
	fmt.Fprint(w, m.RenderModel())
	return nil
}

func runE8(w io.Writer) error {
	set := rules.NewSet()
	set.Add(&rules.Rule{
		LHS: []rules.Clause{rules.RangeClause(rules.Attr("R", "A"),
			strV("a1"), strV("a2"))},
		RHS: rules.PointClause(rules.Attr("R", "B"), strV("b1")),
	})
	fmt.Fprintf(w, "Rule: if a1 <= R.A <= a2 then R.B = b1\n\n")
	enc, err := rules.Encode(set)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Rule relation R'(RuleNo, Role, Lvalue, Att_no, Uvalue):\n%s\n", enc.Rules)
	fmt.Fprintf(w, "Attribute value mapping relation:\n%s\n", enc.Map)
	fmt.Fprintf(w, "Attribute relation (stands in for the INGRES system table):\n%s\n", enc.Attrs)

	dec, err := rules.Decode(enc)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Decoded back: %s", dec)
	return nil
}

func runA1(w io.Writer) error {
	fmt.Fprintf(w, "%-14s %-10s %s\n", "Nc", "rules", "Example 2 backward answer complete?")
	for _, nc := range []int{1, 2, 3, 5} {
		sys, err := shipSystem(nc)
		if err != nil {
			return err
		}
		resp, err := sys.Query(Example2SQL, answer.BackwardOnly)
		if err != nil {
			return err
		}
		complete := "no (class 1301 missing)"
		for _, d := range resp.Inference.Descriptions {
			if d.Clause.Attr.EqualFold(rules.Attr("CLASS", "Class")) && d.Clause.Contains(strV("1301")) {
				complete = "yes"
			}
		}
		fmt.Fprintf(w, "%-14d %-10d %s\n", nc, sys.Rules().Len(), complete)
	}
	// Fractional threshold, the paper's "percentage of instances" knob.
	cat := shipdb.Catalog()
	d, err := shipdb.Dictionary(cat)
	if err != nil {
		return err
	}
	set, err := induct.New(d, induct.Options{NcFraction: 0.10}).InduceAll()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-14s %-10d (threshold = ceil(10%% of source size) per pair)\n", "10% fraction", set.Len())
	fmt.Fprintf(w, "\nLower Nc keeps more rules (more complete backward answers) at higher\nstorage and search cost — the trade-off of Section 5.2.1 step 4.\n")
	return nil
}

func runA2(w io.Writer) error {
	sys, err := shipSystem(3)
	if err != nil {
		return err
	}
	cases := []struct {
		name string
		sql  string
	}{
		{"Example 1", Example1SQL},
		{"Example 2", Example2SQL},
		{"Example 3", Example3SQL},
	}
	fmt.Fprintf(w, "%-10s %-16s %-18s %s\n", "query", "forward facts", "backward descrs", "containment")
	for _, c := range cases {
		resp, err := sys.Query(c.sql, answer.Combined)
		if err != nil {
			return err
		}
		nf := len(resp.Inference.Forward())
		nb := len(resp.Inference.Descriptions)
		containment := "-"
		switch {
		case nf > 0 && nb > 0:
			containment = "superset + subset (combined)"
		case nf > 0:
			containment = "superset of answer (forward)"
		case nb > 0:
			containment = "subset of answer (backward)"
		}
		fmt.Fprintf(w, "%-10s %-16d %-18d %s\n", c.name, nf, nb, containment)
	}
	fmt.Fprintf(w, "\nForward answers CONTAIN the extensional answer; backward answers are\nCONTAINED IN it; combining both yields the most specific description\n(Section 4).\n")
	return nil
}

func runA3(w io.Writer) error {
	cat := shipdb.Catalog()
	d, err := shipdb.Dictionary(cat)
	if err != nil {
		return err
	}
	m, err := ker.Parse(shipdb.KERSchema)
	if err != nil {
		return err
	}
	constraintsOnly, err := baseline.FromModel(m, d, baseline.Options{})
	if err != nil {
		return err
	}
	withStructure, err := baseline.FromModel(m, d, baseline.Options{IncludeStructureRules: true})
	if err != nil {
		return err
	}
	induced, err := induct.New(d, induct.Options{Nc: 3}).InduceAll()
	if err != nil {
		return err
	}

	q := query.New(cat)
	sqls := map[string]string{
		"Example 1": Example1SQL,
		"Example 2": Example2SQL,
		"Example 3": Example3SQL,
	}
	names := []string{"Example 1", "Example 2", "Example 3"}
	kbs := []struct {
		name string
		set  *rules.Set
	}{
		{"constraints only (Motro-style)", constraintsOnly},
		{"constraints + structure rules", withStructure},
		{"induced rules (Nc=3)", induced},
	}
	fmt.Fprintf(w, "%-33s %-8s %-12s %-12s %-12s\n", "knowledge base", "rules", names[0], names[1], names[2])
	for _, kb := range kbs {
		d.SetRules(kb.set)
		p := infer.New(d)
		row := fmt.Sprintf("%-33s %-8d", kb.name, kb.set.Len())
		for _, name := range names {
			_, an, err := q.Run(sqls[name])
			if err != nil {
				return err
			}
			res, err := p.Derive(an)
			if err != nil {
				return err
			}
			row += fmt.Sprintf(" f=%d b=%-6d", len(res.Forward()), len(res.Descriptions))
		}
		fmt.Fprintln(w, row)
	}
	fmt.Fprintf(w, "\nf = forward facts derived, b = backward descriptions. Integrity\nconstraints alone derive nothing for Example 1 (no declared rule covers\ndisplacement); induced rules answer all three — the conclusion's claim.\n")
	return nil
}

func runA4(w io.Writer) error {
	fmt.Fprintf(w, "Section 3.1's inter-object knowledge example: \"the relationship VISIT\n")
	fmt.Fprintf(w, "involves entities of SHIP and PORT and satisfies the constraint that the\n")
	fmt.Fprintf(w, "draft of the ship must be less than the depth of the port.\"\n\n")

	cat := synth.Harbor(synth.HarborConfig{Ships: 40, Ports: 12, Visits: 200, Seed: 31})
	d, err := synth.HarborDictionary(cat)
	if err != nil {
		return err
	}
	in := induct.New(d, induct.Options{Nc: 2})
	cs, err := in.InduceComparisons(d.Relationships()[0])
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Induced from %d clean visits:\n%s\n",
		mustLen(cat, synth.HarborVisit), indent(induct.RenderComparisons(cs), "  "))

	dirty := synth.Harbor(synth.HarborConfig{Ships: 40, Ports: 12, Visits: 200, Seed: 31, Violations: 1})
	dd, err := synth.HarborDictionary(dirty)
	if err != nil {
		return err
	}
	cs2, err := induct.New(dd, induct.Options{Nc: 2}).InduceComparisons(dd.Relationships()[0])
	if err != nil {
		return err
	}
	kept := "correctly withdrawn"
	for _, c := range cs2 {
		if c.L.Attribute == "Draft" && c.R.Attribute == "Depth" && (c.Op == "<" || c.Op == "<=") {
			kept = "STILL PRESENT (unexpected)"
		}
	}
	fmt.Fprintf(w, "\nWith one injected violating visit the Draft/Depth constraint is %s.\n", kept)
	return nil
}

func mustLen(cat *storage.Catalog, name string) int {
	r, err := cat.Get(name)
	if err != nil {
		return 0
	}
	return r.Len()
}

func runA5(w io.Writer) error {
	fmt.Fprintf(w, "Section 3.2 describes the Quinlan-style recursive-partitioning learner;\n")
	fmt.Fprintf(w, "this ablation grows such trees next to the range-induction ILS.\n\n")

	// Ship classes: Displacement → Type.
	cat := shipdb.Catalog()
	cls, err := cat.Get(shipdb.Class)
	if err != nil {
		return err
	}
	tr, err := id3.Build(cls, []string{"Displacement"}, "Type",
		[]rules.AttrRef{rules.Attr("CLASS", "Displacement")},
		rules.Attr("CLASS", "Type"), id3.Options{MinLeaf: 1})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "CLASS: Displacement -> Type decision tree:\n%s\n", indent(tr.String(), "  "))
	acc, err := tr.Accuracy(cls, "Type")
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\nExtracted rules (compare with R8/R9):\n")
	for _, r := range tr.ToRules(cls) {
		fmt.Fprintf(w, "  %s (support %d)\n", r, r.Support)
	}
	fmt.Fprintf(w, "training accuracy: %.2f\n\n", acc)

	// Employee: Age → Position, where the tree needs three splits.
	emp := synth.Employees(200, 1990)
	empRel, err := emp.Get(synth.Employee)
	if err != nil {
		return err
	}
	tr2, err := id3.Build(empRel, []string{"Age"}, "Position",
		[]rules.AttrRef{rules.Attr("EMPLOYEE", "Age")},
		rules.Attr("EMPLOYEE", "Position"), id3.Options{MinLeaf: 1})
	if err != nil {
		return err
	}
	acc2, err := tr2.Accuracy(empRel, "Position")
	if err != nil {
		return err
	}
	ed, err := synth.EmployeeDictionary(emp)
	if err != nil {
		return err
	}
	rangeSet, err := induct.New(ed, induct.Options{Nc: 2}).InduceAll()
	if err != nil {
		return err
	}
	rangeAge := 0
	for _, r := range rangeSet.Rules() {
		if r.LHS[0].Attr.EqualFold(rules.Attr(synth.Employee, "Age")) {
			rangeAge++
		}
	}
	fmt.Fprintf(w, "EMPLOYEE Age -> Position: tree has %d leaves (depth %d, accuracy %.2f);\n",
		tr2.Leaves(), tr2.Depth(), acc2)
	fmt.Fprintf(w, "range induction produces %d Age rules. Both recover the four age bands;\n", rangeAge)
	fmt.Fprintf(w, "the tree additionally handles multi-attribute concepts (conjunctive premises).\n")
	return nil
}

func runA6(w io.Writer) error {
	fmt.Fprintf(w, "The induced knowledge also optimizes query processing, the companion\n")
	fmt.Fprintf(w, "technique the paper cites as [CHU90] and [KING81]:\n\n")
	cat := shipdb.Catalog()
	d, err := shipdb.Dictionary(cat)
	if err != nil {
		return err
	}
	set, err := induct.New(d, induct.Options{Nc: 3}).InduceAll()
	if err != nil {
		return err
	}
	d.SetRules(set)
	q := query.New(cat)
	cases := []struct {
		label, sql string
	}{
		{"implied filter", `SELECT SUBMARINE.ID FROM SUBMARINE, CLASS
WHERE SUBMARINE.CLASS = CLASS.CLASS AND CLASS.DISPLACEMENT > 8000`},
		{"empty proof", `SELECT Class FROM CLASS WHERE Displacement < 2000`},
		{"redundancy", `SELECT Class FROM CLASS WHERE Displacement > 3000 AND Displacement > 8000`},
	}
	for _, c := range cases {
		_, an, err := q.Run(c.sql)
		if err != nil {
			return err
		}
		rep, err := semopt.Analyze(an, d)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%s:\n%s\n", c.label, indent(rep.String(), "  "))
	}
	return nil
}

func strV(s string) relation.Value { return relation.String(s) }

func indent(s, prefix string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i, l := range lines {
		lines[i] = prefix + l
	}
	return strings.Join(lines, "\n")
}
