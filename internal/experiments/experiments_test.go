package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// TestRunAll executes every registered experiment and checks each report
// carries its key artifact.
func TestRunAll(t *testing.T) {
	var buf bytes.Buffer
	if err := RunAll(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	wants := []string{
		// E1: the rule set and the fidelity notes.
		"Induced rule set over the Appendix C instance",
		"entailed: 16/17",
		// E2: Example 1's answers.
		"Rhode Island",
		"type SSBN has Displacement > 8000",
		// E3: Example 2's incompleteness and its resolution.
		"Classes in the range of 0101 to 0103 are SSBN",
		"With R_new maintained the intensional answer is complete",
		// E4: Example 3 combined.
		"0208",
		// E5: Table 1 reproduction.
		"All 12 type ranges match Table 1 exactly.",
		// E6: Figure 5.
		"if 7250 <= CLASS.Displacement <= 30000 then x isa SSBN",
		// E7: the KER schema rendering.
		"object type SUBMARINE",
		// E8: the Section 5.2.2 tables.
		"Attribute value mapping relation",
		// A1-A3.
		"Example 2 backward answer complete?",
		"superset + subset (combined)",
		"subset of answer (backward)",
		"constraints only (Motro-style)",
		// A4-A5.
		"VISIT: SHIP.Draft < PORT.Depth",
		"correctly withdrawn",
		"split on CLASS.Displacement <= 6955",
		// A6.
		"empty: no stored value satisfies",
		"redundant restriction #0",
	}
	for _, want := range wants {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
	if strings.Contains(out, "MISSING:") {
		t.Error("E1 reports missing paper rules")
	}
	if strings.Contains(out, "MISMATCH") {
		t.Error("E5 reports a Table 1 mismatch")
	}
}

func TestRunUnknown(t *testing.T) {
	var buf bytes.Buffer
	if err := Run("E99", &buf); err == nil {
		t.Error("unknown experiment should error")
	}
}

func TestAllAndTitle(t *testing.T) {
	ids := All()
	if len(ids) != 14 {
		t.Errorf("experiments = %d, want 14", len(ids))
	}
	if Title("E1") == "" || Title("nope") != "" {
		t.Error("Title lookup broken")
	}
}
