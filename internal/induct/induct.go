// Package induct implements the paper's Inductive Learning Subsystem
// (Section 5.2): model-based rule induction over the database, driven by
// the schema knowledge in the intelligent data dictionary. For every
// candidate attribute pair X→Y it executes the four-step Rule Induction
// Algorithm of Section 5.2.1 — using the same QUEL statements the paper
// gives — and prunes the result with the Nc support threshold.
package induct

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sort"
	"strings"
	"sync"

	"intensional/internal/dict"
	"intensional/internal/quel"
	"intensional/internal/relation"
	"intensional/internal/rules"
	"intensional/internal/storage"
)

// Options configure induction.
type Options struct {
	// Nc is the absolute pruning threshold: rules satisfied by fewer than
	// Nc database instances are dropped (Section 5.2.1 step 4). Zero or
	// one keeps every rule.
	Nc int
	// NcFraction, when positive, sets the threshold as a fraction of the
	// source relation's size; the effective threshold is
	// max(Nc, ceil(NcFraction·|relation|)).
	NcFraction float64
	// Workers is the number of goroutines InduceAll spreads candidate
	// pairs over. Zero (the default) uses runtime.GOMAXPROCS(0); one
	// reproduces the historical serial behaviour. The induced rule set —
	// rules, numbering, and supports — is identical at every setting:
	// candidate pairs are independent, and results are committed to the
	// set in candidate order regardless of completion order.
	Workers int
}

// workers resolves the effective worker count, capped by the number of
// independent work items.
func (o Options) workers(items int) int {
	w := o.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > items {
		w = items
	}
	if w < 1 {
		w = 1
	}
	return w
}

func (o Options) effectiveNc(sourceSize int) int {
	nc := o.Nc
	if o.NcFraction > 0 {
		f := int(math.Ceil(o.NcFraction * float64(sourceSize)))
		if f > nc {
			nc = f
		}
	}
	return nc
}

// Pair is one candidate rule scheme X→Y together with the relation (base
// table or materialised join) it is induced from. XCol/YCol name the
// columns of Source; X/Y identify the attributes in induced clauses.
type Pair struct {
	Source *relation.Relation
	XCol   string
	YCol   string
	X, Y   rules.AttrRef
}

// Scheme returns the pair's rule scheme.
func (p Pair) Scheme() rules.Scheme { return rules.Scheme{X: p.X, Y: p.Y} }

// Inducer runs rule induction against a dictionary's catalog. An Inducer
// is safe for concurrent use: induction only reads the catalog, and the
// materialised-join cache it keeps is lock-protected.
type Inducer struct {
	d    *dict.Dictionary
	opts Options

	// matMu guards matCache, the per-relationship memo of materialise.
	// N candidate pairs over one relationship share one joined relation
	// instead of rebuilding the same multi-way join N times; the cached
	// relation and column map are immutable by contract (readers never
	// mutate them, and nothing else holds a reference).
	matMu    sync.Mutex
	matCache map[string]*materialised // guarded by matMu
}

// materialised is one cached relationship join: the wide relation, the
// attribute-key → column-name map describing it, and the base relations
// (with versions) it was built from, for staleness checks.
type materialised struct {
	joined *relation.Relation
	colFor map[string]string
	deps   []matDep
}

// matDep pins one base relation a cached join depends on.
type matDep struct {
	name    string
	rel     *relation.Relation
	version uint64
}

// New creates an inducer.
func New(d *dict.Dictionary, opts Options) *Inducer {
	return &Inducer{d: d, opts: opts, matCache: make(map[string]*materialised)}
}

// InducePair runs the four-step Rule Induction Algorithm for one
// attribute pair and returns the surviving rules (unnumbered).
func (in *Inducer) InducePair(p Pair) ([]*rules.Rule, error) {
	return in.InducePairContext(context.Background(), p)
}

// InducePairContext is InducePair with a deadline: the context is
// threaded into the QUEL statements of the induction algorithm, whose
// retrieves honour cancellation at batch boundaries.
func (in *Inducer) InducePairContext(ctx context.Context, p Pair) ([]*rules.Rule, error) {
	xi, ok := p.Source.Schema().Index(p.XCol)
	if !ok {
		return nil, fmt.Errorf("induct: source %s has no column %q", p.Source.Name(), p.XCol)
	}
	yi, ok := p.Source.Schema().Index(p.YCol)
	if !ok {
		return nil, fmt.Errorf("induct: source %s has no column %q", p.Source.Name(), p.YCol)
	}

	// Materialise the (X, Y) projection under canonical column names so
	// the paper's QUEL statements apply verbatim.
	base := relation.New("BASE", relation.MustSchema(
		relation.Column{Name: "X", Type: p.Source.Schema().Col(xi).Type},
		relation.Column{Name: "Y", Type: p.Source.Schema().Col(yi).Type},
	))
	for _, t := range p.Source.Rows() {
		if t[xi].IsNull() || t[yi].IsNull() {
			continue // null values carry no classification evidence
		}
		if err := base.Insert(relation.Tuple{t[xi], t[yi]}); err != nil {
			return nil, err
		}
	}

	scratch := storage.NewCatalog()
	scratch.Put(base)
	sess := quel.NewSession(scratch)
	steps := []string{
		// Step 1: retrieve the (X, Y) value pairs.
		"range of r is BASE",
		"retrieve into S unique (r.Y, r.X) sort by r.Y",
		// Step 2: remove inconsistent (X, Y) value pairs.
		"range of s is S",
		"retrieve into T unique (s.Y, s.X) where (r.X = s.X and r.Y != s.Y)",
		"range of t is T",
		"delete s where (s.X = t.X and s.Y = t.Y)",
	}
	for _, stmt := range steps {
		if _, err := sess.ExecContext(ctx, stmt); err != nil {
			return nil, fmt.Errorf("induct: %s → %s: %w", p.X, p.Y, err)
		}
	}
	surviving, err := scratch.Get("S")
	if err != nil {
		return nil, err
	}

	// Step 3: construct rules. A value range is a consecutive sequence of
	// X values occurring in the database; an X value removed as
	// inconsistent breaks the run (it occurs but has no single Y).
	yFor := make(map[string]relation.Value, surviving.Len())
	for _, t := range surviving.Rows() {
		yFor[t[1].Key()] = t[0] // S columns are (Y, X)
	}
	xs, err := distinctSorted(base, "X")
	if err != nil {
		return nil, err
	}
	// Occurrences per X value, so run support accumulates in one pass.
	occurs := make(map[string]int, len(xs))
	for _, t := range base.Rows() {
		occurs[t[0].Key()]++
	}

	type run struct {
		y       relation.Value
		lo, hi  relation.Value
		support int
	}
	var runs []run
	var cur *run
	for _, x := range xs {
		y, consistent := yFor[x.Key()]
		if !consistent {
			cur = nil
			continue
		}
		if cur != nil && cur.y.Equal(y) {
			cur.hi = x
			cur.support += occurs[x.Key()]
			continue
		}
		runs = append(runs, run{y: y, lo: x, hi: x, support: occurs[x.Key()]})
		cur = &runs[len(runs)-1]
	}

	// Step 4: prune by support, counted as the number of source instances
	// the rule is satisfied by.
	nc := in.opts.effectiveNc(base.Len())
	var out []*rules.Rule
	for _, r := range runs {
		if r.support < nc {
			continue
		}
		out = append(out, &rules.Rule{
			LHS:     []rules.Clause{rules.RangeClause(p.X, r.lo, r.hi)},
			RHS:     rules.PointClause(p.Y, r.y),
			Support: r.support,
		})
	}
	return out, nil
}

// InduceCharacteristics derives the per-class classification
// characteristics of Section 3.1 — for every distinct value y of the
// class column, the observed value range of another attribute:
//
//	if classAttr = y then lo <= valueAttr <= hi
//
// This is the rule form behind Table 1 ("the displacement of an Attack
// Aircraft Carrier is in the range 75,700–81,600 tons") and behind
// backward inference from a subtype to its attribute ranges. Support is
// the number of instances of the class; classes below the Nc threshold
// are pruned.
func (in *Inducer) InduceCharacteristics(src *relation.Relation, classCol, valueCol string, classAttr, valueAttr rules.AttrRef) ([]*rules.Rule, error) {
	ci, ok := src.Schema().Index(classCol)
	if !ok {
		return nil, fmt.Errorf("induct: source %s has no column %q", src.Name(), classCol)
	}
	vi, ok := src.Schema().Index(valueCol)
	if !ok {
		return nil, fmt.Errorf("induct: source %s has no column %q", src.Name(), valueCol)
	}
	type agg struct {
		class   relation.Value
		lo, hi  relation.Value
		support int
	}
	groups := map[string]*agg{}
	var order []string
	for _, t := range src.Rows() {
		c, v := t[ci], t[vi]
		if c.IsNull() || v.IsNull() {
			continue
		}
		k := c.Key()
		g, ok := groups[k]
		if !ok {
			groups[k] = &agg{class: c, lo: v, hi: v, support: 1}
			order = append(order, k)
			continue
		}
		g.support++
		if cmp, err := v.Compare(g.lo); err == nil && cmp < 0 {
			g.lo = v
		}
		if cmp, err := v.Compare(g.hi); err == nil && cmp > 0 {
			g.hi = v
		}
	}
	nc := in.opts.effectiveNc(src.Len())
	var out []*rules.Rule
	for _, k := range order {
		g := groups[k]
		if g.support < nc {
			continue
		}
		out = append(out, &rules.Rule{
			LHS:     []rules.Clause{rules.PointClause(classAttr, g.class)},
			RHS:     rules.RangeClause(valueAttr, g.lo, g.hi),
			Support: g.support,
		})
	}
	return out, nil
}

// distinctSorted returns the distinct values of a column in ascending
// order.
func distinctSorted(r *relation.Relation, col string) ([]relation.Value, error) {
	vals, err := r.Column(col)
	if err != nil {
		return nil, err
	}
	seen := make(map[string]struct{}, len(vals))
	out := make([]relation.Value, 0, len(vals))
	for _, v := range vals {
		if _, dup := seen[v.Key()]; dup {
			continue
		}
		seen[v.Key()] = struct{}{}
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out, nil
}

// CandidatePairs generates the schema-guided candidate attribute pairs of
// Section 3.2:
//
//   - Intra-object pairs: for every declared hierarchy, each attribute of
//     the object (except the classifying attribute itself) against the
//     classifying attribute.
//   - Inter-object pairs: for every relationship, the participants'
//     identifying attributes (the join attribute and the classifying
//     attribute) against the other participant's classifying attribute —
//     including classifying attributes lifted through hierarchy-level
//     links (e.g. SONAR.Sonar → CLASS.Type through SUBMARINE).
func (in *Inducer) CandidatePairs() ([]Pair, error) {
	var out []Pair
	cat := in.d.Catalog()

	for _, h := range in.d.Hierarchies() {
		rel, err := cat.Get(h.Object)
		if err != nil {
			return nil, err
		}
		for _, col := range rel.Schema().Columns() {
			if strings.EqualFold(col.Name, h.ClassifyingAttr) {
				continue
			}
			out = append(out, Pair{
				Source: rel,
				XCol:   col.Name,
				YCol:   h.ClassifyingAttr,
				X:      rules.Attr(rel.Name(), col.Name),
				Y:      h.Attr(),
			})
		}
	}

	for _, r := range in.d.Relationships() {
		joined, colFor, err := in.materialise(r)
		if err != nil {
			return nil, err
		}
		parts := r.Participants()
		for _, a := range parts {
			xAttrs := in.identifyingAttrs(a, r)
			for _, b := range parts {
				if strings.EqualFold(a, b) {
					continue
				}
				for _, y := range in.classifyingChain(b) {
					yCol, ok := colFor[y.Key()]
					if !ok {
						continue
					}
					for _, x := range xAttrs {
						xCol, ok := colFor[x.Key()]
						if !ok {
							continue
						}
						out = append(out, Pair{
							Source: joined,
							XCol:   xCol,
							YCol:   yCol,
							X:      x,
							Y:      y,
						})
					}
				}
			}
		}
	}
	return out, nil
}

// identifyingAttrs returns the attributes of a participant that serve as
// rule premises: its join attribute in the relationship and its
// classifying attribute.
func (in *Inducer) identifyingAttrs(object string, r *dict.Relationship) []rules.AttrRef {
	var out []rules.AttrRef
	add := func(a rules.AttrRef) {
		for _, x := range out {
			if x.EqualFold(a) {
				return
			}
		}
		out = append(out, a)
	}
	for _, l := range r.Links {
		if strings.EqualFold(l.To.Relation, object) {
			add(l.To)
		}
	}
	if h, ok := in.d.Hierarchy(object); ok {
		add(h.Attr())
	}
	return out
}

// classifyingChain returns the classifying attribute of the object and of
// every hierarchy level above it.
func (in *Inducer) classifyingChain(object string) []rules.AttrRef {
	var out []rules.AttrRef
	cur := object
	for depth := 0; depth < 8; depth++ { // bounded against accidental cycles
		if h, ok := in.d.Hierarchy(cur); ok {
			out = append(out, h.Attr())
		}
		link, ok := in.d.LevelAbove(cur)
		if !ok {
			break
		}
		cur = link.To.Relation
	}
	return out
}

// materialise returns the relationship's wide join, memoised per
// relationship: the first call builds it, later calls (other candidate
// pairs, InduceComparisons, repeated InduceAll runs) share the cached
// relation. The cached join is immutable by contract — every consumer
// only reads it. Cache entries self-invalidate when a base relation they
// were built from is mutated or replaced in the catalog.
func (in *Inducer) materialise(r *dict.Relationship) (*relation.Relation, map[string]string, error) {
	in.matMu.Lock()
	defer in.matMu.Unlock()
	k := strings.ToLower(r.Name)
	if m, ok := in.matCache[k]; ok && m.fresh(in.d.Catalog()) {
		return m.joined, m.colFor, nil
	}
	m, err := in.buildJoin(r)
	if err != nil {
		return nil, nil, err
	}
	in.matCache[k] = m
	return m.joined, m.colFor, nil
}

// fresh reports whether every base relation the join was built from is
// still the same object at the same mutation version.
func (m *materialised) fresh(cat *storage.Catalog) bool {
	for _, d := range m.deps {
		rel, err := cat.Get(d.name)
		if err != nil || rel != d.rel || rel.Version() != d.version {
			return false
		}
	}
	return true
}

// buildJoin joins the relationship relation with all participants (and
// the hierarchy levels above them) into one wide relation whose columns
// are qualified "Relation.Attribute". colFor maps attribute keys to the
// joined column names.
func (in *Inducer) buildJoin(r *dict.Relationship) (*materialised, error) {
	cat := in.d.Catalog()
	var deps []matDep
	qualify := func(name string) (*relation.Relation, error) {
		rel, err := cat.Get(name)
		if err != nil {
			return nil, err
		}
		deps = append(deps, matDep{name: name, rel: rel, version: rel.Version()})
		return rel.RenameColumns(func(c string) string { return rel.Name() + "." + c })
	}

	joined, err := qualify(r.Name)
	if err != nil {
		return nil, err
	}
	colFor := map[string]string{}
	record := func(relName string, schemaOf *relation.Relation) {
		for _, c := range schemaOf.Schema().Columns() {
			attr := strings.TrimPrefix(c.Name, relName+".")
			colFor[rules.Attr(relName, attr).Key()] = c.Name
		}
	}
	record(r.Name, joined)

	joinedRels := map[string]bool{strings.ToLower(r.Name): true}
	var attach func(link dict.Link) error
	attach = func(link dict.Link) error {
		target := link.To.Relation
		if joinedRels[strings.ToLower(target)] {
			return nil
		}
		q, err := qualify(target)
		if err != nil {
			return err
		}
		j, err := joined.Join(q,
			relation.JoinOn{
				Left:  link.From.Relation + "." + link.From.Attribute,
				Right: target + "." + link.To.Attribute,
			})
		if err != nil {
			return err
		}
		joined = j
		joinedRels[strings.ToLower(target)] = true
		record(target, q)
		// Climb hierarchy levels above the newly attached entity.
		if up, ok := in.d.LevelAbove(target); ok {
			return attach(up)
		}
		return nil
	}
	for _, link := range r.Links {
		if err := attach(link); err != nil {
			return nil, err
		}
	}
	return &materialised{joined: joined, colFor: colFor, deps: deps}, nil
}

// InduceAll generates candidates, induces every pair, prunes, and returns
// the numbered rule set — the knowledge base contents.
//
// Candidate pairs are induced concurrently on Options.Workers goroutines
// (levelwise relational rule mining is embarrassingly parallel across
// rule schemes: each pair reads shared immutable sources and works in a
// private scratch catalog). Determinism is preserved by committing
// per-pair results to the set in candidate order after the fan-out, so
// rule numbering and supports are identical at every worker count.
func (in *Inducer) InduceAll() (*rules.Set, error) {
	return in.InduceAllContext(context.Background())
}

// InduceAllContext is InduceAll with a deadline, threaded through every
// pair's induction statements.
func (in *Inducer) InduceAllContext(ctx context.Context) (*rules.Set, error) {
	pairs, err := in.CandidatePairs()
	if err != nil {
		return nil, err
	}
	results, err := in.InducePairsContext(ctx, pairs)
	if err != nil {
		return nil, err
	}
	set := rules.NewSet()
	for _, rs := range results {
		for _, r := range rs {
			set.Add(r)
		}
	}
	return set, nil
}

// InducePairs induces the given candidate pairs on the configured worker
// pool and returns the per-pair rule lists in input order (unnumbered —
// the caller commits them to a set). Incremental maintenance uses it to
// re-induce only the schemes a mutation touched, with the same
// parallelism and determinism guarantees as InduceAll.
func (in *Inducer) InducePairs(pairs []Pair) ([][]*rules.Rule, error) {
	return in.InducePairsContext(context.Background(), pairs)
}

// InducePairsContext is InducePairs with a deadline shared by every
// worker's induction statements.
func (in *Inducer) InducePairsContext(ctx context.Context, pairs []Pair) ([][]*rules.Rule, error) {
	results := make([][]*rules.Rule, len(pairs))
	errs := make([]error, len(pairs))
	if w := in.opts.workers(len(pairs)); w <= 1 {
		for i, p := range pairs {
			if results[i], errs[i] = in.InducePairContext(ctx, p); errs[i] != nil {
				break
			}
		}
	} else {
		var wg sync.WaitGroup
		work := make(chan int)
		for g := 0; g < w; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range work {
					results[i], errs[i] = in.InducePairContext(ctx, pairs[i])
				}
			}()
		}
		for i := range pairs {
			work <- i
		}
		close(work)
		wg.Wait()
	}
	// Report the first failure in candidate order, matching what the
	// serial pipeline would have surfaced.
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}
