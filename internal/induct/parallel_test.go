package induct

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"intensional/internal/rules"
	"intensional/internal/shipdb"
	"intensional/internal/synth"
)

// renderWithSupports serialises a rule set byte-exactly for determinism
// comparisons: rule number, rule text, and support, in set order.
func renderWithSupports(set *rules.Set) string {
	var b strings.Builder
	for _, r := range set.Rules() {
		fmt.Fprintf(&b, "R%d: %s (support %d)\n", r.ID, r, r.Support)
	}
	return b.String()
}

// TestInduceAllParallelMatchesSerial asserts that the parallel pipeline
// produces a rule set byte-identical to the serial one — same rules, same
// numbering, same supports — on the ship test bed and a synthetic fleet,
// across a sweep of worker counts.
func TestInduceAllParallelMatchesSerial(t *testing.T) {
	fleet := synth.Fleet(synth.FleetConfig{ClassesPerType: 5, ShipsPerClass: 20, Seed: 1})
	fleetDict, err := synth.FleetDictionary(fleet)
	if err != nil {
		t.Fatal(err)
	}
	shipDict, err := shipdb.Dictionary(shipdb.Catalog())
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		in   func(opts Options) *Inducer
		nc   int
	}{
		{"shipdb", func(opts Options) *Inducer { return New(shipDict, opts) }, 3},
		{"fleet", func(opts Options) *Inducer { return New(fleetDict, opts) }, 2},
	} {
		t.Run(tc.name, func(t *testing.T) {
			serial, err := tc.in(Options{Nc: tc.nc, Workers: 1}).InduceAll()
			if err != nil {
				t.Fatal(err)
			}
			if serial.Len() == 0 {
				t.Fatal("serial induction found no rules; comparison is vacuous")
			}
			want := renderWithSupports(serial)
			for _, workers := range []int{0, 2, 4, 8} {
				par, err := tc.in(Options{Nc: tc.nc, Workers: workers}).InduceAll()
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				if got := renderWithSupports(par); got != want {
					t.Errorf("workers=%d: rule set diverges from serial\n--- serial ---\n%s--- parallel ---\n%s",
						workers, want, got)
				}
			}
		})
	}
}

// TestInduceAllRepeatedRunsShareCache checks the memoised materialise:
// repeated InduceAll calls on one Inducer stay deterministic (the cached
// joins are shared, not rebuilt or mutated).
func TestInduceAllRepeatedRunsShareCache(t *testing.T) {
	in := shipInducer(t, Options{Nc: 3, Workers: 4})
	first, err := in.InduceAll()
	if err != nil {
		t.Fatal(err)
	}
	want := renderWithSupports(first)
	for run := 0; run < 3; run++ {
		again, err := in.InduceAll()
		if err != nil {
			t.Fatal(err)
		}
		if got := renderWithSupports(again); got != want {
			t.Fatalf("run %d diverged after cache warm-up:\n%s\nvs\n%s", run, want, got)
		}
	}
}

// TestCatalogReadsDuringInduceAll hammers Catalog.Get/Names from reader
// goroutines while a parallel InduceAll is running — the concurrent-
// readers contract the serving layer will rely on, validated under
// go test -race.
func TestCatalogReadsDuringInduceAll(t *testing.T) {
	d, err := shipdb.Dictionary(shipdb.Catalog())
	if err != nil {
		t.Fatal(err)
	}
	cat := d.Catalog()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, name := range cat.Names() {
					r, err := cat.Get(name)
					if err != nil {
						t.Errorf("Get(%s): %v", name, err)
						return
					}
					// Touch rows the way a reader would.
					if r.Len() > 0 {
						_ = r.Row(0).Key()
					}
				}
			}
		}()
	}
	for i := 0; i < 3; i++ {
		if _, err := New(d, Options{Nc: 3, Workers: 8}).InduceAll(); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}
