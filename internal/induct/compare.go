package induct

import (
	"fmt"
	"strings"

	"intensional/internal/dict"
	"intensional/internal/relation"
	"intensional/internal/rules"
)

// Comparison is one piece of induced inter-object knowledge (Section
// 3.1): across every instance of a relationship, the left attribute
// stands in Op relation to the right attribute — e.g. the VISIT
// relationship satisfies SHIP.Draft < PORT.Depth.
type Comparison struct {
	Rel     string // relationship name
	L, R    rules.AttrRef
	Op      string // strongest operator holding on every instance: < <= = >= >
	Support int    // relationship instances witnessing it
}

// String renders the comparison.
func (c Comparison) String() string {
	return fmt.Sprintf("%s: %s %s %s (support %d)", c.Rel, c.L, c.Op, c.R, c.Support)
}

// InduceComparisons scans a relationship's instances for attribute pairs
// across its participants that satisfy a uniform comparison, returning
// the strongest operator that holds for each pair. Pairs are drawn from
// numeric attributes only (string comparisons across objects are rarely
// meaningful constraints). Relationships with fewer than Nc instances
// yield nothing.
func (in *Inducer) InduceComparisons(r *dict.Relationship) ([]Comparison, error) {
	joined, colFor, err := in.materialise(r)
	if err != nil {
		return nil, err
	}
	if joined.Len() < in.opts.effectiveNc(joined.Len()) || joined.Len() == 0 {
		return nil, nil
	}
	parts := r.Participants()

	// Numeric attributes per participant (and the hierarchy levels above
	// them, which materialise already joined in).
	numeric := func(object string) []rules.AttrRef {
		var out []rules.AttrRef
		cat := in.d.Catalog()
		cur := object
		for depth := 0; depth < 8; depth++ {
			rel, err := cat.Get(cur)
			if err != nil {
				break
			}
			for _, col := range rel.Schema().Columns() {
				if col.Type == relation.TInt || col.Type == relation.TFloat {
					out = append(out, rules.Attr(rel.Name(), col.Name))
				}
			}
			link, ok := in.d.LevelAbove(cur)
			if !ok {
				break
			}
			cur = link.To.Relation
		}
		return out
	}

	var out []Comparison
	for ai, a := range parts {
		for bi, b := range parts {
			if ai >= bi {
				continue // unordered pairs; the operator encodes direction
			}
			for _, la := range numeric(a) {
				lc, ok := colFor[la.Key()]
				if !ok {
					continue
				}
				li, ok := joined.Schema().Index(lc)
				if !ok {
					continue
				}
				for _, rb := range numeric(b) {
					rc, ok := colFor[rb.Key()]
					if !ok {
						continue
					}
					ri, ok := joined.Schema().Index(rc)
					if !ok {
						continue
					}
					if op, support := strongestOp(joined, li, ri); op != "" {
						if support < in.opts.effectiveNc(joined.Len()) {
							continue
						}
						out = append(out, Comparison{
							Rel: r.Name, L: la, R: rb, Op: op, Support: support,
						})
					}
				}
			}
		}
	}
	return out, nil
}

// strongestOp returns the most specific comparison holding between two
// columns on every non-null row, and the number of witnessing rows.
func strongestOp(rel *relation.Relation, li, ri int) (string, int) {
	var sawLess, sawEqual, sawGreater bool
	support := 0
	for _, t := range rel.Rows() {
		l, r := t[li], t[ri]
		if l.IsNull() || r.IsNull() {
			continue
		}
		c, err := l.Compare(r)
		if err != nil {
			return "", 0
		}
		support++
		switch {
		case c < 0:
			sawLess = true
		case c == 0:
			sawEqual = true
		default:
			sawGreater = true
		}
	}
	if support == 0 {
		return "", 0
	}
	switch {
	case sawLess && !sawEqual && !sawGreater:
		return "<", support
	case !sawLess && sawEqual && !sawGreater:
		return "=", support
	case !sawLess && !sawEqual && sawGreater:
		return ">", support
	case sawLess && sawEqual && !sawGreater:
		return "<=", support
	case !sawLess && sawEqual && sawGreater:
		return ">=", support
	default:
		return "", 0
	}
}

// RenderComparisons formats induced inter-object knowledge, one line per
// comparison.
func RenderComparisons(cs []Comparison) string {
	var b strings.Builder
	for _, c := range cs {
		b.WriteString(c.String())
		b.WriteByte('\n')
	}
	return b.String()
}
