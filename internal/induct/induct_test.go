package induct

import (
	"strings"
	"testing"

	"intensional/internal/dict"
	"intensional/internal/relation"
	"intensional/internal/rules"
	"intensional/internal/shipdb"
	"intensional/internal/storage"
)

func shipInducer(t *testing.T, opts Options) *Inducer {
	t.Helper()
	d, err := shipdb.Dictionary(shipdb.Catalog())
	if err != nil {
		t.Fatal(err)
	}
	return New(d, opts)
}

// entails reports whether the induced set contains a rule at least as
// strong as want: same consequence, premise on the same attribute, and a
// premise interval covering want's. This is the right fidelity criterion
// because the algorithm may merge adjacent runs the paper printed
// separately (a wider premise implies the narrower rule).
func entails(set *rules.Set, want *rules.Rule) bool {
	for _, r := range set.Rules() {
		if len(r.LHS) != 1 || len(want.LHS) != 1 {
			continue
		}
		if !r.RHS.Attr.EqualFold(want.RHS.Attr) || !r.RHS.Lo.Equal(want.RHS.Lo) || !r.RHS.Hi.Equal(want.RHS.Hi) {
			continue
		}
		if !r.LHS[0].Attr.EqualFold(want.LHS[0].Attr) {
			continue
		}
		if r.LHS[0].Interval().Subsumes(want.LHS[0].Interval()) {
			return true
		}
	}
	return false
}

// TestInduceShipRules is the E1 reproduction: with Nc=3 the ILS induces
// the paper's Section 6 rule set. Documented divergences from the printed
// list, all implied by the paper's own algorithm and data:
//
//   - R14 ("if x.Class = 0203 then y isa BQQ") is satisfied by a single
//     instance (Narwhal), so the support threshold that drops R_new also
//     drops R14; it appears at Nc=1.
//   - R17 is induced in the stronger merged form
//     "BQQ-8 <= Sonar <= BQS-04 then Type = SSN" (BQQ-2/BQQ-5/BQS-12 are
//     removed as inconsistent, leaving BQQ-8 and BQS-04 adjacent).
//   - Two extra consecutive runs with support >= 3 that the paper's list
//     omits: "SSBN130 <= Id <= SSBN629 then SonarType = BQQ" and
//     "BQS-13 <= Sonar <= TACTAS then Type = SSN".
func TestInduceShipRules(t *testing.T) {
	in := shipInducer(t, Options{Nc: 3})
	got, err := in.InduceAll()
	if err != nil {
		t.Fatal(err)
	}
	paper := shipdb.PaperRules()

	var missing []string
	for i, want := range paper.Rules() {
		if i == 13 { // R14, support 1: below Nc=3 by the paper's own rule
			if entails(got, want) {
				t.Errorf("R14 should be pruned at Nc=3")
			}
			continue
		}
		if !entails(got, want) {
			missing = append(missing, want.String())
		}
	}
	if len(missing) > 0 {
		t.Errorf("missing %d paper rules at Nc=3:\n  %s\ninduced:\n%s",
			len(missing), strings.Join(missing, "\n  "), got)
	}

	// The documented extra rules beyond the paper's list.
	extras := []*rules.Rule{
		{
			LHS: []rules.Clause{rules.RangeClause(rules.Attr("SUBMARINE", "Id"),
				relation.String("SSBN130"), relation.String("SSBN629"))},
			RHS: rules.PointClause(rules.Attr("SONAR", "SonarType"), relation.String("BQQ")),
		},
		{
			LHS: []rules.Clause{rules.RangeClause(rules.Attr("SONAR", "Sonar"),
				relation.String("BQS-13"), relation.String("TACTAS"))},
			RHS: rules.PointClause(rules.Attr("CLASS", "Type"), relation.String("SSN")),
		},
	}
	for _, e := range extras {
		found := false
		for _, r := range got.Rules() {
			if r.Equal(e) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("expected the documented extra rule %s", e)
		}
	}
	// 15 paper rules verbatim + merged R17 + 2 extras.
	if got.Len() != 18 {
		t.Errorf("induced %d rules at Nc=3, want 18:\n%s", got.Len(), got)
	}
}

// TestInduceShipRulesNc1 verifies all seventeen paper rules (including
// R14) are entailed when pruning is off.
func TestInduceShipRulesNc1(t *testing.T) {
	in := shipInducer(t, Options{Nc: 1})
	got, err := in.InduceAll()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range shipdb.PaperRules().Rules() {
		if !entails(got, want) {
			t.Errorf("missing paper rule at Nc=1: %s", want)
		}
	}
	// R_new from Example 2 must be present at Nc=1 ...
	rnew := &rules.Rule{
		LHS: []rules.Clause{rules.PointClause(rules.Attr("CLASS", "Class"), relation.String("1301"))},
		RHS: rules.PointClause(rules.Attr("CLASS", "Type"), relation.String("SSBN")),
	}
	found := false
	for _, r := range got.Rules() {
		if r.Equal(rnew) {
			if r.Support != 1 {
				t.Errorf("R_new support = %d, want 1", r.Support)
			}
			found = true
		}
	}
	if !found {
		t.Errorf("R_new (%s) missing at Nc=1", rnew)
	}
}

func TestRuleSupports(t *testing.T) {
	in := shipInducer(t, Options{Nc: 3})
	got, err := in.InduceAll()
	if err != nil {
		t.Fatal(err)
	}
	// Spot-check the supports derived in the paper's narrative.
	wantSupports := map[string]int{
		"if 0101 <= CLASS.Class <= 0103 then CLASS.Type = SSBN":             3, // R5
		"if 0201 <= CLASS.Class <= 0215 then CLASS.Type = SSN":              9, // R6
		"if 2145 <= CLASS.Displacement <= 6955 then CLASS.Type = SSN":       9, // R8
		"if 7250 <= CLASS.Displacement <= 30000 then CLASS.Type = SSBN":     4, // R9
		"if SSN604 <= SUBMARINE.Id <= SSN671 then SONAR.SonarType = BQQ":    7, // R13
		"if BQQ-8 <= SONAR.Sonar <= BQS-04 then CLASS.Type = SSN":           5, // merged R17
		"if SSBN623 <= SUBMARINE.Id <= SSBN635 then SUBMARINE.Class = 0103": 3, // R1
		"if Skate <= CLASS.ClassName <= Thresher then CLASS.Type = SSN":     4, // R7
		"if 0208 <= SUBMARINE.Class <= 0215 then SONAR.SonarType = BQS":     4, // R16
		"if BQS-04 <= SONAR.Sonar <= BQS-15 then SONAR.SonarType = BQS":     4, // R11
	}
	for _, r := range got.Rules() {
		if want, ok := wantSupports[r.String()]; ok && r.Support != want {
			t.Errorf("%s: support = %d, want %d", r, r.Support, want)
		}
	}
}

func TestInducePairConsistencyRemoval(t *testing.T) {
	rel := relation.New("R", relation.MustSchema(
		relation.Column{Name: "A", Type: relation.TInt},
		relation.Column{Name: "B", Type: relation.TString},
	))
	// A=1..3 → x; A=4 inconsistent; A=5..6 → x again (run must be split).
	rel.MustInsert(relation.Int(1), relation.String("x"))
	rel.MustInsert(relation.Int(2), relation.String("x"))
	rel.MustInsert(relation.Int(3), relation.String("x"))
	rel.MustInsert(relation.Int(4), relation.String("x"))
	rel.MustInsert(relation.Int(4), relation.String("y"))
	rel.MustInsert(relation.Int(5), relation.String("x"))
	rel.MustInsert(relation.Int(6), relation.String("x"))

	cat := storage.NewCatalog()
	cat.Put(rel)
	in := New(dict.New(cat), Options{Nc: 1})
	got, err := in.InducePair(Pair{
		Source: rel, XCol: "A", YCol: "B",
		X: rules.Attr("R", "A"), Y: rules.Attr("R", "B"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("rules = %d, want 2 (run split at inconsistent A=4):\n%v", len(got), got)
	}
	if got[0].String() != "if 1 <= R.A <= 3 then R.B = x" {
		t.Errorf("rule 0 = %s", got[0])
	}
	if got[1].String() != "if 5 <= R.A <= 6 then R.B = x" {
		t.Errorf("rule 1 = %s", got[1])
	}
	if got[0].Support != 3 || got[1].Support != 2 {
		t.Errorf("supports = %d, %d", got[0].Support, got[1].Support)
	}
}

func TestInducePairPointRule(t *testing.T) {
	rel := relation.New("R", relation.MustSchema(
		relation.Column{Name: "A", Type: relation.TInt},
		relation.Column{Name: "B", Type: relation.TString},
	))
	rel.MustInsert(relation.Int(10), relation.String("z"))
	cat := storage.NewCatalog()
	cat.Put(rel)
	in := New(dict.New(cat), Options{})
	got, err := in.InducePair(Pair{
		Source: rel, XCol: "A", YCol: "B",
		X: rules.Attr("R", "A"), Y: rules.Attr("R", "B"),
	})
	if err != nil {
		t.Fatal(err)
	}
	// x1 = x2 reduces to "if A = 10 then B = z".
	if len(got) != 1 || got[0].String() != "if R.A = 10 then R.B = z" {
		t.Fatalf("rules = %v", got)
	}
}

func TestInducePairNullsIgnored(t *testing.T) {
	rel := relation.New("R", relation.MustSchema(
		relation.Column{Name: "A", Type: relation.TInt},
		relation.Column{Name: "B", Type: relation.TString},
	))
	rel.MustInsert(relation.Int(1), relation.String("x"))
	rel.MustInsert(relation.Null(), relation.String("x"))
	rel.MustInsert(relation.Int(2), relation.Null())
	cat := storage.NewCatalog()
	cat.Put(rel)
	in := New(dict.New(cat), Options{})
	got, err := in.InducePair(Pair{
		Source: rel, XCol: "A", YCol: "B",
		X: rules.Attr("R", "A"), Y: rules.Attr("R", "B"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Support != 1 {
		t.Fatalf("rules = %v", got)
	}
}

func TestInducePairErrors(t *testing.T) {
	rel := relation.New("R", relation.MustSchema(relation.Column{Name: "A", Type: relation.TInt}))
	cat := storage.NewCatalog()
	cat.Put(rel)
	in := New(dict.New(cat), Options{})
	if _, err := in.InducePair(Pair{Source: rel, XCol: "nope", YCol: "A"}); err == nil {
		t.Error("unknown X column should error")
	}
	if _, err := in.InducePair(Pair{Source: rel, XCol: "A", YCol: "nope"}); err == nil {
		t.Error("unknown Y column should error")
	}
}

func TestNcFraction(t *testing.T) {
	// 10% of the 13-row CLASS relation rounds up to 2: the paper's
	// "percentage of the total number of instances" knob.
	opts := Options{NcFraction: 0.10}
	if nc := opts.effectiveNc(13); nc != 2 {
		t.Errorf("effectiveNc(13) = %d, want 2", nc)
	}
	opts = Options{Nc: 5, NcFraction: 0.10}
	if nc := opts.effectiveNc(13); nc != 5 {
		t.Errorf("absolute Nc should win: %d", nc)
	}
}

func TestCandidatePairsShape(t *testing.T) {
	in := shipInducer(t, Options{})
	pairs, err := in.CandidatePairs()
	if err != nil {
		t.Fatal(err)
	}
	// Intra: SUBMARINE (Id, Name → Class) = 2; CLASS (Class, ClassName,
	// Displacement → Type) = 3; SONAR (Sonar → SonarType) = 1.
	// Inter via INSTALL: SUBMARINE side (Id, Class) × SONAR.SonarType = 2;
	// SONAR side (Sonar, SonarType) × (SUBMARINE.Class, CLASS.Type) = 4.
	if len(pairs) != 12 {
		for _, p := range pairs {
			t.Logf("  %s", p.Scheme())
		}
		t.Fatalf("candidate pairs = %d, want 12", len(pairs))
	}
	// First candidate follows hierarchy registration order: SUBMARINE.
	if pairs[0].Scheme().String() != "SUBMARINE.Id --> SUBMARINE.Class" {
		t.Errorf("first pair = %s", pairs[0].Scheme())
	}
}

// TestInducedRulesSound checks the soundness invariant: every induced
// rule is satisfied by every tuple of its source (no counterexamples).
func TestInducedRulesSound(t *testing.T) {
	in := shipInducer(t, Options{Nc: 1})
	pairs, err := in.CandidatePairs()
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pairs {
		rs, err := in.InducePair(p)
		if err != nil {
			t.Fatal(err)
		}
		xi := p.Source.Schema().MustIndex(p.XCol)
		yi := p.Source.Schema().MustIndex(p.YCol)
		for _, r := range rs {
			for _, tup := range p.Source.Rows() {
				if tup[xi].IsNull() || tup[yi].IsNull() {
					continue
				}
				if r.LHS[0].Contains(tup[xi]) && !r.RHS.Contains(tup[yi]) {
					t.Errorf("rule %s violated by tuple %v of %s", r, tup, p.Source.Name())
				}
			}
		}
	}
}
