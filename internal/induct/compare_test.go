package induct_test

import (
	"strings"
	"testing"

	"intensional/internal/dict"
	"intensional/internal/induct"
	"intensional/internal/relation"
	"intensional/internal/rules"
	"intensional/internal/storage"
	"intensional/internal/synth"
)

// TestVisitDraftConstraint reproduces the Section 3.1 example: the
// relationship VISIT satisfies the constraint that the draft of the ship
// is less than the depth of the port, induced from the instances.
func TestVisitDraftConstraint(t *testing.T) {
	cat := synth.Harbor(synth.HarborConfig{Ships: 30, Ports: 10, Visits: 120, Seed: 11})
	d, err := synth.HarborDictionary(cat)
	if err != nil {
		t.Fatal(err)
	}
	in := induct.New(d, induct.Options{Nc: 2})
	rels := d.Relationships()
	cs, err := in.InduceComparisons(rels[0])
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, c := range cs {
		if c.L.EqualFold(rules.Attr("SHIP", "Draft")) &&
			c.R.EqualFold(rules.Attr("PORT", "Depth")) {
			if c.Op != "<" {
				t.Errorf("Draft vs Depth op = %q, want <", c.Op)
			}
			found = true
		}
	}
	if !found {
		t.Fatalf("Draft < Depth not induced: %v", cs)
	}
	out := induct.RenderComparisons(cs)
	if !strings.Contains(out, "VISIT: SHIP.Draft < PORT.Depth") {
		t.Errorf("rendering = %q", out)
	}
}

// TestVisitConstraintRejectedWhenDirty: an injected violating visit must
// prevent the "<" constraint from being induced.
func TestVisitConstraintRejectedWhenDirty(t *testing.T) {
	cat := synth.Harbor(synth.HarborConfig{Ships: 30, Ports: 10, Visits: 120, Seed: 11, Violations: 1})
	d, err := synth.HarborDictionary(cat)
	if err != nil {
		t.Fatal(err)
	}
	in := induct.New(d, induct.Options{Nc: 2})
	cs, err := in.InduceComparisons(d.Relationships()[0])
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cs {
		if c.L.EqualFold(rules.Attr("SHIP", "Draft")) &&
			c.R.EqualFold(rules.Attr("PORT", "Depth")) &&
			(c.Op == "<" || c.Op == "<=") {
			t.Errorf("dirty data should break the draft constraint, got %s", c)
		}
	}
}

// TestStrongestOperatorSelection checks each operator case on a
// hand-built relationship.
func TestStrongestOperatorSelection(t *testing.T) {
	build := func(pairs [][2]int64) (*dict.Dictionary, *dict.Relationship) {
		cat := storage.NewCatalog()
		a := relation.New("A", relation.MustSchema(
			relation.Column{Name: "Id", Type: relation.TInt},
			relation.Column{Name: "X", Type: relation.TInt},
		))
		b := relation.New("B", relation.MustSchema(
			relation.Column{Name: "Id", Type: relation.TInt},
			relation.Column{Name: "Y", Type: relation.TInt},
		))
		l := relation.New("L", relation.MustSchema(
			relation.Column{Name: "A", Type: relation.TInt},
			relation.Column{Name: "B", Type: relation.TInt},
		))
		for i, p := range pairs {
			id := int64(i)
			a.MustInsert(relation.Int(id), relation.Int(p[0]))
			b.MustInsert(relation.Int(id), relation.Int(p[1]))
			l.MustInsert(relation.Int(id), relation.Int(id))
		}
		cat.Put(a)
		cat.Put(b)
		cat.Put(l)
		d := dict.New(cat)
		rel := &dict.Relationship{
			Name: "L",
			Links: []dict.Link{
				{From: rules.Attr("L", "A"), To: rules.Attr("A", "Id")},
				{From: rules.Attr("L", "B"), To: rules.Attr("B", "Id")},
			},
		}
		if err := d.AddRelationship(rel); err != nil {
			t.Fatal(err)
		}
		return d, rel
	}
	cases := []struct {
		pairs  [][2]int64
		wantOp string // operator for A.X vs B.Y ("" = none)
	}{
		{[][2]int64{{1, 2}, {3, 9}}, "<"},
		{[][2]int64{{1, 1}, {3, 9}}, "<="},
		{[][2]int64{{2, 2}, {9, 9}}, "="},
		{[][2]int64{{2, 1}, {9, 9}}, ">="},
		{[][2]int64{{2, 1}, {9, 3}}, ">"},
		{[][2]int64{{1, 2}, {9, 3}}, ""},
	}
	for _, c := range cases {
		d, rel := build(c.pairs)
		in := induct.New(d, induct.Options{})
		cs, err := in.InduceComparisons(rel)
		if err != nil {
			t.Fatal(err)
		}
		got := ""
		for _, cmp := range cs {
			if cmp.L.EqualFold(rules.Attr("A", "X")) && cmp.R.EqualFold(rules.Attr("B", "Y")) {
				got = cmp.Op
			}
		}
		if got != c.wantOp {
			t.Errorf("pairs %v: op = %q, want %q (all: %v)", c.pairs, got, c.wantOp, cs)
		}
	}
}

func TestHarborGenerator(t *testing.T) {
	cat := synth.Harbor(synth.HarborConfig{Ships: 20, Ports: 5, Visits: 50, Seed: 3})
	visit, err := cat.Get(synth.HarborVisit)
	if err != nil {
		t.Fatal(err)
	}
	if visit.Len() == 0 {
		t.Fatal("no visits generated")
	}
	// Every clean visit satisfies the constraint by construction.
	ship, _ := cat.Get(synth.HarborShip)
	port, _ := cat.Get(synth.HarborPort)
	draft := map[string]int64{}
	for _, r := range ship.Rows() {
		draft[r[0].Str()] = r[2].Int64()
	}
	depth := map[string]int64{}
	for _, r := range port.Rows() {
		depth[r[0].Str()] = r[2].Int64()
	}
	for _, r := range visit.Rows() {
		if draft[r[0].Str()] >= depth[r[1].Str()] {
			t.Errorf("visit %v violates the draft constraint", r)
		}
	}
}
