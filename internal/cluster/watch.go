// Live cluster reconfiguration: the watch side of the configuration
// seam. A WatchableStore delivers every membership change as a fresh,
// validated Config on a channel, so a running iqpd re-resolves the
// leader and followers re-point without a restart. The first backend is
// a file mtime/size poll — production config management rewrites the
// JSON file, the watcher notices within one poll interval — and the
// in-memory backend notifies synchronously for tests and embedded use.
//
// The watcher never delivers a broken view: a file caught mid-write
// (truncated, half-rendered JSON) or one that fails Validate is skipped
// and the last good configuration stays in force; the next poll retries
// until the file parses again. Mtime moving backwards (a restore from
// backup, clock skew on the writer) still counts as a change — the
// trigger is "the signature differs", not "the file is newer".

package cluster

import (
	"os"
	"reflect"
	"time"
)

// WatchableStore is a ConfigurationStore whose backend can report
// configuration changes after load time.
type WatchableStore interface {
	ConfigurationStore
	// Watch returns a channel delivering each new validated Config until
	// stop is closed (then the channel closes). Deliveries coalesce: a
	// slow consumer sees the latest configuration, not every
	// intermediate one.
	Watch(stop <-chan struct{}) <-chan *Config
}

// DefaultWatchInterval is how often FileStore.Watch polls the file when
// the store does not override it.
const DefaultWatchInterval = 2 * time.Second

// fileSig is the change signature of the configuration file: any
// difference — size, mtime in either direction, existence — re-reads
// the file.
type fileSig struct {
	exists  bool
	size    int64
	modTime time.Time
}

func statSig(path string) fileSig {
	fi, err := os.Stat(path)
	if err != nil {
		return fileSig{}
	}
	return fileSig{exists: true, size: fi.Size(), modTime: fi.ModTime()}
}

// equal compares signatures with time.Time.Equal, so a wall-clock value
// with and without a monotonic reading still compares by instant.
func (s fileSig) equal(o fileSig) bool {
	return s.exists == o.exists && s.size == o.size && s.modTime.Equal(o.modTime)
}

// Watch polls the file's mtime and size every WatchInterval (default
// DefaultWatchInterval) and delivers each changed, valid configuration.
// Files that fail to parse or validate — including files caught halfway
// through a non-atomic rewrite — are skipped and retried on the next
// tick, so a watcher never observes a torn configuration.
func (s *FileStore) Watch(stop <-chan struct{}) <-chan *Config {
	interval := s.WatchInterval
	if interval <= 0 {
		interval = DefaultWatchInterval
	}
	out := make(chan *Config, 1)
	last := statSig(s.Path)
	var lastCfg *Config
	if cfg, err := s.Load(); err == nil {
		lastCfg = cfg
	}
	go func() {
		defer close(out)
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-stop:
				return
			case <-ticker.C:
			}
			sig := statSig(s.Path)
			if sig.equal(last) {
				continue
			}
			cfg, err := s.Load()
			if err != nil {
				// Mid-write or invalid: leave `last` untouched so the next
				// tick re-reads, and keep the previous config in force.
				continue
			}
			last = sig
			if lastCfg != nil && reflect.DeepEqual(cfg, lastCfg) {
				continue // touch without a content change
			}
			lastCfg = cfg
			deliver(out, cfg)
		}
	}()
	return out
}

// deliver sends latest-wins: an undrained previous value is replaced
// rather than blocking the watcher.
func deliver(out chan *Config, cfg *Config) {
	for {
		select {
		case out <- cfg:
			return
		default:
			select {
			case <-out:
			default:
			}
		}
	}
}

// Watch delivers every configuration installed with Set after the call.
// Invalid configurations are skipped, mirroring the file backend. The
// channel closes once stop does; removal and close happen under the
// store's lock, so a concurrent Set never sends on a closed channel.
func (s *MemStore) Watch(stop <-chan struct{}) <-chan *Config {
	out := make(chan *Config, 1)
	s.mu.Lock()
	s.watchers = append(s.watchers, out)
	s.mu.Unlock()
	go func() {
		<-stop
		s.mu.Lock()
		for i, w := range s.watchers {
			if w == out {
				s.watchers = append(s.watchers[:i], s.watchers[i+1:]...)
				break
			}
		}
		close(out)
		s.mu.Unlock()
	}()
	return out
}
