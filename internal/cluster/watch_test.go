package cluster

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

// waitConfig receives the next delivered configuration or fails after
// the deadline — the condition-based wait the watch tests rely on.
func waitConfig(t *testing.T, ch <-chan *Config, timeout time.Duration) *Config {
	t.Helper()
	select {
	case cfg, ok := <-ch:
		if !ok {
			t.Fatal("watch channel closed before a delivery")
		}
		return cfg
	case <-time.After(timeout):
		t.Fatal("no configuration delivered before the deadline")
	}
	return nil
}

func writeConfig(t *testing.T, path, leaderID string) {
	t.Helper()
	var data string
	switch leaderID {
	case "a":
		data = `{"nodes":[{"id":"a","addr":"http://h:1","role":"leader"},{"id":"b","addr":"http://h:2","role":"follower"}]}`
	default:
		data = `{"nodes":[{"id":"a","addr":"http://h:1","role":"follower"},{"id":"b","addr":"http://h:2","role":"leader"}]}`
	}
	if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestFileStoreWatchDeliversChanges(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cluster.json")
	writeConfig(t, path, "a")
	st := &FileStore{Path: path, WatchInterval: 5 * time.Millisecond}
	stop := make(chan struct{})
	defer close(stop)
	ch := st.Watch(stop)

	writeConfig(t, path, "b")
	cfg := waitConfig(t, ch, 5*time.Second)
	if ld, _ := cfg.Leader(); ld.ID != "b" {
		t.Fatalf("delivered leader = %q, want b", ld.ID)
	}
}

func TestFileStoreWatchSkipsTruncatedFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cluster.json")
	writeConfig(t, path, "a")
	st := &FileStore{Path: path, WatchInterval: 5 * time.Millisecond}
	stop := make(chan struct{})
	defer close(stop)
	ch := st.Watch(stop)

	// A non-atomic writer caught mid-write: truncated JSON. The watcher
	// must not deliver it, and must still deliver the eventual complete
	// rewrite (same final signature change or a later one).
	if err := os.WriteFile(path, []byte(`{"nodes":[{"id":"a",`), 0o644); err != nil {
		t.Fatal(err)
	}
	select {
	case cfg := <-ch:
		t.Fatalf("watcher delivered a torn configuration: %+v", cfg)
	case <-time.After(50 * time.Millisecond):
	}
	writeConfig(t, path, "b")
	cfg := waitConfig(t, ch, 5*time.Second)
	if ld, _ := cfg.Leader(); ld.ID != "b" {
		t.Fatalf("delivered leader = %q, want b", ld.ID)
	}
}

func TestFileStoreWatchMtimeRegress(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cluster.json")
	writeConfig(t, path, "a")
	st := &FileStore{Path: path, WatchInterval: 5 * time.Millisecond}
	stop := make(chan struct{})
	defer close(stop)
	ch := st.Watch(stop)

	// Rewrite the config, then push its mtime into the past (a restore
	// from backup, or writer clock skew). The signature still differs
	// from the last seen one, so the change must be delivered.
	writeConfig(t, path, "b")
	past := time.Now().Add(-time.Hour)
	if err := os.Chtimes(path, past, past); err != nil {
		t.Fatal(err)
	}
	cfg := waitConfig(t, ch, 5*time.Second)
	if ld, _ := cfg.Leader(); ld.ID != "b" {
		t.Fatalf("delivered leader = %q, want b", ld.ID)
	}
}

func TestFileStoreWatchCoalesces(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cluster.json")
	writeConfig(t, path, "a")
	st := &FileStore{Path: path, WatchInterval: time.Millisecond}
	stop := make(chan struct{})
	defer close(stop)
	ch := st.Watch(stop)

	// Nobody drains the channel while two changes land: the consumer
	// must see the latest one, not block the watcher or read a stale
	// intermediate.
	writeConfig(t, path, "b")
	time.Sleep(20 * time.Millisecond)
	writeConfig(t, path, "a")
	deadline := time.Now().Add(5 * time.Second)
	for {
		cfg := waitConfig(t, ch, 5*time.Second)
		if ld, _ := cfg.Leader(); ld.ID == "a" {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("latest configuration never delivered")
		}
	}
}

func TestMemStoreWatch(t *testing.T) {
	st := NewMemStore(twoNodes())
	stop := make(chan struct{})
	ch := st.Watch(stop)

	st.Set(&Config{Nodes: []Node{{ID: "solo", Addr: "x", Role: RoleLeader}}})
	cfg := waitConfig(t, ch, 5*time.Second)
	if len(cfg.Nodes) != 1 || cfg.Nodes[0].ID != "solo" {
		t.Fatalf("delivered %+v", cfg)
	}

	// Invalid configurations are never delivered.
	st.Set(&Config{})
	select {
	case cfg := <-ch:
		t.Fatalf("watcher delivered an invalid configuration: %+v", cfg)
	case <-time.After(20 * time.Millisecond):
	}

	close(stop)
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, ok := <-ch; !ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("watch channel never closed after stop")
		}
	}
}
