package cluster

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func twoNodes() *Config {
	return &Config{Nodes: []Node{
		{ID: "a", Addr: "http://127.0.0.1:1", Role: RoleLeader},
		{ID: "b", Addr: "http://127.0.0.1:2", Role: RoleFollower},
	}}
}

func TestValidateAcceptsOneLeader(t *testing.T) {
	if err := twoNodes().Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name string
		cfg  *Config
		want string
	}{
		{"empty", &Config{}, "no nodes"},
		{"nil", nil, "no nodes"},
		{"two leaders", &Config{Nodes: []Node{
			{ID: "a", Addr: "x", Role: RoleLeader},
			{ID: "b", Addr: "y", Role: RoleLeader},
		}}, "2 leaders"},
		{"no leader", &Config{Nodes: []Node{
			{ID: "a", Addr: "x", Role: RoleFollower},
		}}, "0 leaders"},
		{"duplicate id", &Config{Nodes: []Node{
			{ID: "a", Addr: "x", Role: RoleLeader},
			{ID: "a", Addr: "y", Role: RoleFollower},
		}}, "duplicate"},
		{"missing addr", &Config{Nodes: []Node{
			{ID: "a", Addr: "", Role: RoleLeader},
		}}, "no addr"},
		{"bad role", &Config{Nodes: []Node{
			{ID: "a", Addr: "x", Role: "observer"},
		}}, "unknown role"},
		{"duplicate addr", &Config{Nodes: []Node{
			{ID: "a", Addr: "http://h:1", Role: RoleLeader},
			{ID: "b", Addr: "http://h:1", Role: RoleFollower},
		}}, "share address"},
		{"empty id beside valid ones", &Config{Nodes: []Node{
			{ID: "a", Addr: "x", Role: RoleLeader},
			{ID: "", Addr: "y", Role: RoleFollower},
		}}, "has no id"},
	}
	for _, tc := range cases {
		err := tc.cfg.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: Validate() = %v, want error containing %q", tc.name, err, tc.want)
		}
	}
}

func TestLeaderAndNodeLookup(t *testing.T) {
	cfg := twoNodes()
	ld, ok := cfg.Leader()
	if !ok || ld.ID != "a" {
		t.Fatalf("Leader() = %+v, %v; want node a", ld, ok)
	}
	n, ok := cfg.Node("b")
	if !ok || n.Role != RoleFollower {
		t.Fatalf("Node(b) = %+v, %v", n, ok)
	}
	if _, ok := cfg.Node("zzz"); ok {
		t.Fatal("Node(zzz) found a ghost member")
	}
}

func TestFileStoreRoundtrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cluster.json")
	data := `{"nodes":[
		{"id":"iqp-1","addr":"http://10.0.0.5:8473","role":"leader"},
		{"id":"iqp-2","addr":"http://10.0.0.6:8473","role":"follower"}
	]}`
	if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg, err := NewFileStore(path).Load()
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(cfg.Nodes) != 2 {
		t.Fatalf("loaded %d nodes, want 2", len(cfg.Nodes))
	}
	ld, _ := cfg.Leader()
	if ld.Addr != "http://10.0.0.5:8473" {
		t.Fatalf("leader addr = %q", ld.Addr)
	}
}

func TestFileStoreRejectsInvalid(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cluster.json")
	if err := os.WriteFile(path, []byte(`{"nodes":[{"id":"a","addr":"x","role":"follower"}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := NewFileStore(path).Load(); err == nil {
		t.Fatal("Load accepted a leaderless configuration")
	}
	if _, err := NewFileStore(filepath.Join(t.TempDir(), "missing.json")).Load(); err == nil {
		t.Fatal("Load accepted a missing file")
	}
}

func TestMemStore(t *testing.T) {
	st := NewMemStore(twoNodes())
	cfg, err := st.Load()
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if _, ok := cfg.Leader(); !ok {
		t.Fatal("no leader in loaded config")
	}
	st.Set(&Config{Nodes: []Node{{ID: "solo", Addr: "x", Role: RoleLeader}}})
	cfg, err = st.Load()
	if err != nil || len(cfg.Nodes) != 1 {
		t.Fatalf("after Set: %+v, %v", cfg, err)
	}
}

func TestParseRole(t *testing.T) {
	if r, err := ParseRole(" Leader "); err != nil || r != RoleLeader {
		t.Fatalf("ParseRole(Leader) = %v, %v", r, err)
	}
	if _, err := ParseRole("observer"); err == nil {
		t.Fatal("ParseRole accepted observer")
	}
}

func TestFollowerStatusLag(t *testing.T) {
	if got := (FollowerStatus{LeaderSeq: 10, AppliedSeq: 7}).Lag(); got != 3 {
		t.Fatalf("Lag = %d, want 3", got)
	}
	if got := (FollowerStatus{LeaderSeq: 5, AppliedSeq: 9}).Lag(); got != 0 {
		t.Fatalf("Lag clamps at 0, got %d", got)
	}
}
