// Package cluster is the membership seam of the replicated serving
// tier: who the nodes are, which one leads, and how a process finds
// that out. The ConfigurationStore interface deliberately stays tiny —
// load a validated Config — so the backend can grow from a static file
// (production config management lays the file down, the process reads
// it at boot) to a coordination service without touching the replica or
// serving layers. Tests use the in-memory backend.
//
// The model is single-leader physical replication: exactly one node
// accepts writes and streams its WAL; every other node is a follower
// serving reads from replayed snapshots. There is no election here —
// the configuration *is* the authority, which matches the static-file
// deployment this tier targets; a coordinated backend would implement
// the same interface.
package cluster

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"sync"
	"time"
)

// Role is a node's place in the cluster.
type Role string

const (
	// RoleLeader accepts writes, runs induction, and streams its WAL.
	RoleLeader Role = "leader"
	// RoleFollower replays the leader's WAL and serves reads only.
	RoleFollower Role = "follower"
)

// ParseRole validates a role string (as found in flags or config files).
func ParseRole(s string) (Role, error) {
	switch Role(strings.ToLower(strings.TrimSpace(s))) {
	case RoleLeader:
		return RoleLeader, nil
	case RoleFollower:
		return RoleFollower, nil
	default:
		return "", fmt.Errorf("cluster: unknown role %q (want %q or %q)", s, RoleLeader, RoleFollower)
	}
}

// Node is one cluster member.
type Node struct {
	// ID names the node uniquely within the cluster ("iqp-1").
	ID string `json:"id"`
	// Addr is the node's base URL as peers reach it
	// ("http://10.0.0.5:8473").
	Addr string `json:"addr"`
	Role Role   `json:"role"`
}

// Config is one consistent view of cluster membership.
type Config struct {
	Nodes []Node `json:"nodes"`
}

// Validate checks the structural invariants every backend must deliver:
// at least one node, exactly one leader, unique non-empty IDs, and a
// unique non-empty address per node.
func (c *Config) Validate() error {
	if c == nil || len(c.Nodes) == 0 {
		return fmt.Errorf("cluster: configuration has no nodes")
	}
	leaders := 0
	seen := make(map[string]bool, len(c.Nodes))
	seenAddr := make(map[string]string, len(c.Nodes))
	for i, n := range c.Nodes {
		if n.ID == "" {
			return fmt.Errorf("cluster: node %d has no id", i)
		}
		if seen[n.ID] {
			return fmt.Errorf("cluster: duplicate node id %q", n.ID)
		}
		seen[n.ID] = true
		if n.Addr == "" {
			return fmt.Errorf("cluster: node %q has no addr", n.ID)
		}
		if other, dup := seenAddr[n.Addr]; dup {
			return fmt.Errorf("cluster: nodes %q and %q share address %q", other, n.ID, n.Addr)
		}
		seenAddr[n.Addr] = n.ID
		switch n.Role {
		case RoleLeader:
			leaders++
		case RoleFollower:
		default:
			return fmt.Errorf("cluster: node %q has unknown role %q", n.ID, n.Role)
		}
	}
	if leaders != 1 {
		return fmt.Errorf("cluster: configuration names %d leaders, want exactly 1", leaders)
	}
	return nil
}

// Leader returns the cluster's single leader. The second return is
// false only for an unvalidated configuration.
func (c *Config) Leader() (Node, bool) {
	for _, n := range c.Nodes {
		if n.Role == RoleLeader {
			return n, true
		}
	}
	return Node{}, false
}

// Node returns the member with the given ID.
func (c *Config) Node(id string) (Node, bool) {
	for _, n := range c.Nodes {
		if n.ID == id {
			return n, true
		}
	}
	return Node{}, false
}

// ConfigurationStore supplies cluster membership. Implementations
// return a validated Config; callers treat the result as immutable.
type ConfigurationStore interface {
	Load() (*Config, error)
}

// FileStore reads membership from a JSON file — the production backend
// for statically configured deployments:
//
//	{"nodes": [
//	  {"id": "iqp-1", "addr": "http://10.0.0.5:8473", "role": "leader"},
//	  {"id": "iqp-2", "addr": "http://10.0.0.6:8473", "role": "follower"}
//	]}
type FileStore struct {
	Path string
	// WatchInterval is how often Watch polls the file's mtime and size;
	// zero means DefaultWatchInterval.
	WatchInterval time.Duration
}

// NewFileStore returns a store reading the JSON config at path.
func NewFileStore(path string) *FileStore { return &FileStore{Path: path} }

// Load reads and validates the configuration file.
func (s *FileStore) Load() (*Config, error) {
	data, err := os.ReadFile(s.Path)
	if err != nil {
		return nil, fmt.Errorf("cluster: read configuration: %w", err)
	}
	var cfg Config
	if err := json.Unmarshal(data, &cfg); err != nil {
		return nil, fmt.Errorf("cluster: parse %s: %w", s.Path, err)
	}
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("%w (in %s)", err, s.Path)
	}
	return &cfg, nil
}

// MemStore holds membership in memory — the test backend, and the seam
// a future coordinated backend would slot behind.
type MemStore struct {
	mu       sync.Mutex
	cfg      *Config        // guarded by mu
	watchers []chan *Config // guarded by mu
}

// NewMemStore returns a store serving the given configuration.
func NewMemStore(cfg *Config) *MemStore { return &MemStore{cfg: cfg} }

// Set replaces the served configuration and notifies watchers when it
// validates (an invalid configuration is still stored — Load reports
// the error — but never delivered as a change). Delivery is
// latest-wins and non-blocking, so holding the lock here cannot park on
// a slow watcher.
func (s *MemStore) Set(cfg *Config) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cfg = cfg
	if cfg.Validate() != nil {
		return
	}
	for _, out := range s.watchers {
		deliver(out, cfg)
	}
}

// Load validates and returns the current configuration.
func (s *MemStore) Load() (*Config, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.cfg.Validate(); err != nil {
		return nil, err
	}
	return s.cfg, nil
}

// Follower consistency states reported in FollowerStatus.State and the
// follower's /healthz mode.
const (
	// StateBootstrapping: fetching or installing a full snapshot.
	StateBootstrapping = "bootstrapping"
	// StateCatchingUp: streaming, but behind the leader's WAL position.
	StateCatchingUp = "catching-up"
	// StateReady: applied position caught the leader's at the last poll.
	StateReady = "ready"
	// StateDisconnected: the last poll failed; serving the last applied
	// snapshot while retrying.
	StateDisconnected = "disconnected"
)

// FollowerStatus is one observation of a follower's replication
// progress — produced by the replica loop, consumed by the serving
// layer's /healthz and /metrics.
type FollowerStatus struct {
	// State is one of the State* constants.
	State string
	// AppliedSeq is the last WAL sequence replayed into the follower's
	// snapshots; LeaderSeq is the leader's position at the last
	// successful poll.
	AppliedSeq, LeaderSeq uint64
	// Version is the follower's current snapshot version.
	Version uint64
	// Bootstraps counts full snapshot installs (initial plus any
	// catch-up re-bootstraps after falling behind WAL retention).
	Bootstraps uint64
	// BootstrapChunks and BootstrapTotalChunks report progress through a
	// chunked bootstrap transfer in flight: chunks verified so far out of
	// the manifest's total. Both are zero between transfers.
	BootstrapChunks, BootstrapTotalChunks uint64
	// RecordsApplied counts WAL records replayed since the process
	// started.
	RecordsApplied uint64
	// LastContact is when the leader last answered; zero before the
	// first successful exchange.
	LastContact time.Time
	// LastError describes the most recent replication failure, empty
	// while healthy.
	LastError string
}

// Lag is how many WAL records the follower trails the leader by, as of
// the last successful poll.
func (st FollowerStatus) Lag() uint64 {
	if st.LeaderSeq <= st.AppliedSeq {
		return 0
	}
	return st.LeaderSeq - st.AppliedSeq
}
