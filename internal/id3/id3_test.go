package id3_test

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"intensional/internal/id3"
	"intensional/internal/relation"
	"intensional/internal/rules"
	"intensional/internal/shipdb"
	"intensional/internal/synth"
)

// TestShipDisplacementTree grows a tree classifying CLASS.Type from
// Displacement: the data is separable at the 6955/7250 boundary, so the
// tree must be a single split with two pure leaves — the decision-tree
// counterpart of rules R8/R9.
func TestShipDisplacementTree(t *testing.T) {
	cat := shipdb.Catalog()
	cls, err := cat.Get(shipdb.Class)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := id3.Build(cls, []string{"Displacement"}, "Type",
		[]rules.AttrRef{rules.Attr("CLASS", "Displacement")},
		rules.Attr("CLASS", "Type"), id3.Options{MinLeaf: 1})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Leaves() != 2 || tr.Depth() != 1 {
		t.Fatalf("tree shape: %d leaves, depth %d\n%s", tr.Leaves(), tr.Depth(), tr)
	}
	if !tr.Root.Threshold.Equal(relation.Int(6955)) {
		t.Errorf("split threshold = %s, want 6955", tr.Root.Threshold)
	}
	acc, err := tr.Accuracy(cls, "Type")
	if err != nil || acc != 1.0 {
		t.Errorf("accuracy = %v %v", acc, err)
	}
	rs := tr.ToRules(cls)
	if len(rs) != 2 {
		t.Fatalf("rules = %v", rs)
	}
	want := map[string]bool{
		"if 2145 <= CLASS.Displacement <= 6955 then CLASS.Type = SSN":   false,
		"if 7250 <= CLASS.Displacement <= 30000 then CLASS.Type = SSBN": false,
	}
	for _, r := range rs {
		if _, ok := want[r.String()]; ok {
			want[r.String()] = true
		} else {
			t.Errorf("unexpected rule %s", r)
		}
	}
	for k, seen := range want {
		if !seen {
			t.Errorf("missing rule %s", k)
		}
	}
}

// TestEmployeeTree: the four age bands produce a four-leaf tree with
// perfect training accuracy.
func TestEmployeeTree(t *testing.T) {
	cat := synth.Employees(300, 5)
	emp, err := cat.Get(synth.Employee)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := id3.Build(emp, []string{"Age"}, "Position",
		[]rules.AttrRef{rules.Attr("EMPLOYEE", "Age")},
		rules.Attr("EMPLOYEE", "Position"), id3.Options{MinLeaf: 1})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Leaves() != 4 {
		t.Errorf("leaves = %d, want 4\n%s", tr.Leaves(), tr)
	}
	acc, err := tr.Accuracy(emp, "Position")
	if err != nil || acc != 1.0 {
		t.Errorf("accuracy = %v %v", acc, err)
	}
	rs := tr.ToRules(emp)
	if len(rs) != 4 {
		t.Errorf("rules = %d, want 4", len(rs))
	}
}

// TestMultiAttributeTree uses two descriptors where neither alone
// separates the classes.
func TestMultiAttributeTree(t *testing.T) {
	rel := relation.New("R", relation.MustSchema(
		relation.Column{Name: "A", Type: relation.TInt},
		relation.Column{Name: "B", Type: relation.TInt},
		relation.Column{Name: "C", Type: relation.TString},
	))
	// C = hi iff A > 5 and B > 5 (an AND concept).
	for a := int64(0); a < 10; a++ {
		for b := int64(0); b < 10; b++ {
			c := "lo"
			if a > 5 && b > 5 {
				c = "hi"
			}
			rel.MustInsert(relation.Int(a), relation.Int(b), relation.String(c))
		}
	}
	tr, err := id3.Build(rel, []string{"A", "B"}, "C",
		[]rules.AttrRef{rules.Attr("R", "A"), rules.Attr("R", "B")},
		rules.Attr("R", "C"), id3.Options{MinLeaf: 1})
	if err != nil {
		t.Fatal(err)
	}
	acc, err := tr.Accuracy(rel, "C")
	if err != nil || acc != 1.0 {
		t.Fatalf("accuracy = %v %v\n%s", acc, err, tr)
	}
	// The "hi" leaf's rule must constrain both attributes.
	found := false
	for _, r := range tr.ToRules(rel) {
		if r.RHS.Lo.Str() == "hi" {
			if len(r.LHS) != 2 {
				t.Errorf("hi rule premise = %v", r.LHS)
			}
			found = true
		}
	}
	if !found {
		t.Error("no rule concludes hi")
	}
}

func TestMinLeafPruning(t *testing.T) {
	cat := shipdb.Catalog()
	cls, _ := cat.Get(shipdb.Class)
	// MinLeaf larger than the SSBN class count forbids any split.
	tr, err := id3.Build(cls, []string{"Displacement"}, "Type",
		[]rules.AttrRef{rules.Attr("CLASS", "Displacement")},
		rules.Attr("CLASS", "Type"), id3.Options{MinLeaf: 7})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Leaves() != 1 {
		t.Errorf("leaves = %d, want 1 (split forbidden)\n%s", tr.Leaves(), tr)
	}
	if !tr.Root.Class.Equal(relation.String("SSN")) {
		t.Errorf("majority class = %s", tr.Root.Class)
	}
}

func TestMaxDepth(t *testing.T) {
	cat := synth.Employees(200, 7)
	emp, _ := cat.Get(synth.Employee)
	tr, err := id3.Build(emp, []string{"Age"}, "Position",
		[]rules.AttrRef{rules.Attr("EMPLOYEE", "Age")},
		rules.Attr("EMPLOYEE", "Position"), id3.Options{MinLeaf: 1, MaxDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Depth() > 1 {
		t.Errorf("depth = %d, want <= 1", tr.Depth())
	}
}

func TestBuildErrors(t *testing.T) {
	rel := relation.New("R", relation.MustSchema(
		relation.Column{Name: "A", Type: relation.TInt},
		relation.Column{Name: "B", Type: relation.TString},
	))
	a := []rules.AttrRef{rules.Attr("R", "A")}
	y := rules.Attr("R", "B")
	if _, err := id3.Build(rel, nil, "B", nil, y, id3.Options{}); err == nil {
		t.Error("no descriptors should error")
	}
	if _, err := id3.Build(rel, []string{"A"}, "B", nil, y, id3.Options{}); err == nil {
		t.Error("attr/column count mismatch should error")
	}
	if _, err := id3.Build(rel, []string{"nope"}, "B", a, y, id3.Options{}); err == nil {
		t.Error("unknown descriptor should error")
	}
	if _, err := id3.Build(rel, []string{"A"}, "nope", a, y, id3.Options{}); err == nil {
		t.Error("unknown class column should error")
	}
	if _, err := id3.Build(rel, []string{"A"}, "B", a, y, id3.Options{}); err == nil {
		t.Error("empty relation should error")
	}
	rel.MustInsert(relation.Null(), relation.String("x"))
	if _, err := id3.Build(rel, []string{"A"}, "B", a, y, id3.Options{}); err == nil {
		t.Error("all-null examples should error")
	}
}

func TestTreeString(t *testing.T) {
	cat := shipdb.Catalog()
	cls, _ := cat.Get(shipdb.Class)
	tr, err := id3.Build(cls, []string{"Displacement"}, "Type",
		[]rules.AttrRef{rules.Attr("CLASS", "Displacement")},
		rules.Attr("CLASS", "Type"), id3.Options{MinLeaf: 1})
	if err != nil {
		t.Fatal(err)
	}
	out := tr.String()
	for _, want := range []string{"split on CLASS.Displacement <= 6955", "SSN", "SSBN", "purity 1.00"} {
		if !strings.Contains(out, want) {
			t.Errorf("tree rendering missing %q:\n%s", want, out)
		}
	}
}

// Property: with MinLeaf=1 and deterministic labels derived from the
// descriptors, the fully grown tree reaches training accuracy 1.
func TestConsistentDataPerfectAccuracyProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		rel := relation.New("R", relation.MustSchema(
			relation.Column{Name: "A", Type: relation.TInt},
			relation.Column{Name: "B", Type: relation.TInt},
			relation.Column{Name: "Y", Type: relation.TString},
		))
		// Deterministic concept with random thresholds.
		t1 := int64(rr.Intn(20))
		t2 := int64(rr.Intn(20))
		n := 5 + rr.Intn(60)
		for i := 0; i < n; i++ {
			a := int64(rr.Intn(20))
			b := int64(rr.Intn(20))
			y := "n"
			if a <= t1 || b > t2 {
				y = "p"
			}
			rel.MustInsert(relation.Int(a), relation.Int(b), relation.String(y))
		}
		tr, err := id3.Build(rel, []string{"A", "B"}, "Y",
			[]rules.AttrRef{rules.Attr("R", "A"), rules.Attr("R", "B")},
			rules.Attr("R", "Y"), id3.Options{MinLeaf: 1})
		if err != nil {
			return false
		}
		acc, err := tr.Accuracy(rel, "Y")
		return err == nil && acc == 1.0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// Property: every extracted rule is sound on the training data (no
// covered tuple contradicts the consequence).
func TestExtractedRulesSoundProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		rel := relation.New("R", relation.MustSchema(
			relation.Column{Name: "A", Type: relation.TInt},
			relation.Column{Name: "Y", Type: relation.TString},
		))
		thr := int64(rr.Intn(15))
		n := 4 + rr.Intn(40)
		for i := 0; i < n; i++ {
			a := int64(rr.Intn(20))
			y := "lo"
			if a > thr {
				y = "hi"
			}
			rel.MustInsert(relation.Int(a), relation.String(y))
		}
		tr, err := id3.Build(rel, []string{"A"}, "Y",
			[]rules.AttrRef{rules.Attr("R", "A")}, rules.Attr("R", "Y"),
			id3.Options{MinLeaf: 1})
		if err != nil {
			return false
		}
		for _, r := range tr.ToRules(rel) {
			for _, tup := range rel.Rows() {
				match := true
				for _, c := range r.LHS {
					if !c.Contains(tup[0]) {
						match = false
						break
					}
				}
				if match && !r.RHS.Contains(tup[1]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}
