// Package id3 implements the inductive learning technique Section 3.2
// describes (citing Quinlan): recursively select the descriptor that
// best separates the training examples, partition on it, and recurse
// until every partition is pure. It serves as an alternative strategy
// for the Inductive Learning Subsystem: trees over ordered attributes
// with binary threshold splits, convertible to the same Horn-rule form
// the inference processor consumes (one rule per leaf, conjunctive
// premise).
package id3

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"intensional/internal/relation"
	"intensional/internal/rules"
)

// Options bound tree growth.
type Options struct {
	// MinLeaf is the minimum number of examples a leaf must cover
	// (plays the role the pruning threshold Nc plays for range rules).
	MinLeaf int
	// MaxDepth caps the tree height; 0 means unbounded.
	MaxDepth int
}

// Node is one tree node: a leaf predicting a class, or a binary split
// "value <= Threshold".
type Node struct {
	Leaf      bool
	Class     relation.Value // leaf: majority class
	Support   int            // examples reaching the node
	Purity    float64        // fraction of Support in the majority class
	Attr      rules.AttrRef  // split attribute
	Col       int            // split column in the source schema
	Threshold relation.Value // go Left when value <= Threshold
	Left      *Node
	Right     *Node
}

// Tree is a trained decision tree over one relation.
type Tree struct {
	Root  *Node
	xCols []int
	attrs []rules.AttrRef
	yAttr rules.AttrRef
}

// Build grows a tree classifying yCol from xCols over the relation.
// attrs names the X columns for rule extraction; yAttr names the class.
func Build(rel *relation.Relation, xCols []string, yCol string,
	attrs []rules.AttrRef, yAttr rules.AttrRef, opts Options) (*Tree, error) {
	if len(xCols) == 0 {
		return nil, fmt.Errorf("id3: no descriptor columns")
	}
	if len(attrs) != len(xCols) {
		return nil, fmt.Errorf("id3: %d attribute names for %d columns", len(attrs), len(xCols))
	}
	if opts.MinLeaf < 1 {
		opts.MinLeaf = 1
	}
	yi, ok := rel.Schema().Index(yCol)
	if !ok {
		return nil, fmt.Errorf("id3: no class column %q", yCol)
	}
	xis := make([]int, len(xCols))
	for i, c := range xCols {
		ci, ok := rel.Schema().Index(c)
		if !ok {
			return nil, fmt.Errorf("id3: no descriptor column %q", c)
		}
		xis[i] = ci
	}
	var examples []relation.Tuple
	for _, t := range rel.Rows() {
		if t[yi].IsNull() {
			continue
		}
		skip := false
		for _, ci := range xis {
			if t[ci].IsNull() {
				skip = true
				break
			}
		}
		if !skip {
			examples = append(examples, t)
		}
	}
	if len(examples) == 0 {
		return nil, fmt.Errorf("id3: no usable examples")
	}
	tr := &Tree{xCols: xis, attrs: attrs, yAttr: yAttr}
	tr.Root = tr.grow(examples, yi, opts, 0)
	return tr, nil
}

// entropy of the class distribution.
func entropy(examples []relation.Tuple, yi int) float64 {
	counts := map[string]int{}
	for _, t := range examples {
		counts[t[yi].Key()]++
	}
	h := 0.0
	n := float64(len(examples))
	for _, c := range counts {
		p := float64(c) / n
		h -= p * math.Log2(p)
	}
	return h
}

// majority returns the most frequent class and its count.
func majority(examples []relation.Tuple, yi int) (relation.Value, int) {
	counts := map[string]int{}
	vals := map[string]relation.Value{}
	for _, t := range examples {
		k := t[yi].Key()
		counts[k]++
		vals[k] = t[yi]
	}
	bestK, bestN := "", -1
	for k, n := range counts {
		if n > bestN || (n == bestN && k < bestK) {
			bestK, bestN = k, n
		}
	}
	return vals[bestK], bestN
}

// grow recursively builds the tree (the "recursively determines a set of
// descriptors" loop of Section 3.2).
func (tr *Tree) grow(examples []relation.Tuple, yi int, opts Options, depth int) *Node {
	class, n := majority(examples, yi)
	node := &Node{
		Leaf: true, Class: class, Support: len(examples),
		Purity: float64(n) / float64(len(examples)),
	}
	if n == len(examples) || (opts.MaxDepth > 0 && depth >= opts.MaxDepth) ||
		len(examples) < 2*opts.MinLeaf {
		return node
	}
	baseH := entropy(examples, yi)
	bestGain := 1e-12
	bestCol := -1
	bestAttr := -1
	var bestThreshold relation.Value
	var bestLeft, bestRight []relation.Tuple

	for ai, ci := range tr.xCols {
		sorted := append([]relation.Tuple(nil), examples...)
		sort.SliceStable(sorted, func(a, b int) bool {
			return sorted[a][ci].Less(sorted[b][ci])
		})
		// Candidate thresholds: each boundary between distinct values.
		for i := 1; i < len(sorted); i++ {
			if sorted[i][ci].Equal(sorted[i-1][ci]) {
				continue
			}
			if i < opts.MinLeaf || len(sorted)-i < opts.MinLeaf {
				continue
			}
			left, right := sorted[:i], sorted[i:]
			nL, nR := float64(len(left)), float64(len(right))
			gain := baseH - (nL*entropy(left, yi)+nR*entropy(right, yi))/float64(len(sorted))
			if gain > bestGain {
				bestGain = gain
				bestCol = ci
				bestAttr = ai
				bestThreshold = sorted[i-1][ci]
				bestLeft = append([]relation.Tuple(nil), left...)
				bestRight = append([]relation.Tuple(nil), right...)
			}
		}
	}
	if bestCol < 0 {
		return node
	}
	node.Leaf = false
	node.Attr = tr.attrs[bestAttr]
	node.Col = bestCol
	node.Threshold = bestThreshold
	node.Left = tr.grow(bestLeft, yi, opts, depth+1)
	node.Right = tr.grow(bestRight, yi, opts, depth+1)
	return node
}

// Classify predicts the class for a tuple of the source relation.
func (tr *Tree) Classify(t relation.Tuple) relation.Value {
	n := tr.Root
	for !n.Leaf {
		v := t[n.Col]
		c, err := v.Compare(n.Threshold)
		if err != nil || c > 0 {
			n = n.Right
		} else {
			n = n.Left
		}
	}
	return n.Class
}

// Accuracy reports the fraction of the relation's rows the tree
// classifies correctly.
func (tr *Tree) Accuracy(rel *relation.Relation, yCol string) (float64, error) {
	yi, ok := rel.Schema().Index(yCol)
	if !ok {
		return 0, fmt.Errorf("id3: no class column %q", yCol)
	}
	if rel.Len() == 0 {
		return 0, nil
	}
	correct := 0
	for _, t := range rel.Rows() {
		if tr.Classify(t).Equal(t[yi]) {
			correct++
		}
	}
	return float64(correct) / float64(rel.Len()), nil
}

// Leaves returns the number of leaves.
func (tr *Tree) Leaves() int {
	var count func(*Node) int
	count = func(n *Node) int {
		if n.Leaf {
			return 1
		}
		return count(n.Left) + count(n.Right)
	}
	return count(tr.Root)
}

// Depth returns the tree height (a single leaf has depth 0).
func (tr *Tree) Depth() int {
	var depth func(*Node) int
	depth = func(n *Node) int {
		if n.Leaf {
			return 0
		}
		l, r := depth(n.Left), depth(n.Right)
		if l > r {
			return l + 1
		}
		return r + 1
	}
	return depth(tr.Root)
}

// bound tracks the value interval a path constrains an attribute to.
type bound struct {
	lo, hi       relation.Value
	hasLo, hasHi bool
}

// ToRules converts every leaf into a Horn rule: the conjunction of the
// path's interval constraints implies the leaf's class. Open path bounds
// are closed to the leaf's observed extrema so the rules use the same
// closed (lvalue, attribute, uvalue) clause form as the range ILS.
func (tr *Tree) ToRules(rel *relation.Relation) []*rules.Rule {
	var out []*rules.Rule
	var walk func(n *Node, bounds map[string]*bound)
	walk = func(n *Node, bounds map[string]*bound) {
		if n.Leaf {
			r := tr.leafRule(rel, n, bounds)
			if r != nil {
				out = append(out, r)
			}
			return
		}
		// Left: attr <= threshold.
		lb := cloneBounds(bounds)
		b := lb[n.Attr.Key()]
		if b == nil {
			b = &bound{}
			lb[n.Attr.Key()] = b
		}
		if !b.hasHi || n.Threshold.Less(b.hi) {
			b.hi, b.hasHi = n.Threshold, true
		}
		walk(n.Left, lb)
		// Right: attr > threshold.
		rb := cloneBounds(bounds)
		b = rb[n.Attr.Key()]
		if b == nil {
			b = &bound{}
			rb[n.Attr.Key()] = b
		}
		if !b.hasLo || b.lo.Less(n.Threshold) {
			b.lo, b.hasLo = n.Threshold, true
		}
		walk(n.Right, rb)
	}
	walk(tr.Root, map[string]*bound{})
	return out
}

func cloneBounds(in map[string]*bound) map[string]*bound {
	out := make(map[string]*bound, len(in))
	for k, v := range in {
		c := *v
		out[k] = &c
	}
	return out
}

// leafRule materialises one leaf's path as a rule, closing open bounds
// to the covered examples' observed extrema.
func (tr *Tree) leafRule(rel *relation.Relation, leaf *Node, bounds map[string]*bound) *rules.Rule {
	// Collect the examples reaching this leaf to close open bounds.
	var covered []relation.Tuple
	for _, t := range rel.Rows() {
		if tr.Classify(t).Equal(leaf.Class) && tr.reaches(t, leaf) {
			covered = append(covered, t)
		}
	}
	if len(covered) == 0 {
		return nil
	}
	var lhs []rules.Clause
	for ai, ci := range tr.xCols {
		attr := tr.attrs[ai]
		b := bounds[attr.Key()]
		if b == nil {
			continue // attribute unconstrained on this path
		}
		lo, hi := covered[0][ci], covered[0][ci]
		for _, t := range covered[1:] {
			if t[ci].Less(lo) {
				lo = t[ci]
			}
			if hi.Less(t[ci]) {
				hi = t[ci]
			}
		}
		lhs = append(lhs, rules.RangeClause(attr, lo, hi))
	}
	if len(lhs) == 0 {
		return nil
	}
	return &rules.Rule{
		LHS:     lhs,
		RHS:     rules.PointClause(tr.yAttr, leaf.Class),
		Support: leaf.Support,
	}
}

// reaches reports whether classification of t ends at the given leaf.
func (tr *Tree) reaches(t relation.Tuple, leaf *Node) bool {
	n := tr.Root
	for !n.Leaf {
		v := t[n.Col]
		c, err := v.Compare(n.Threshold)
		if err != nil || c > 0 {
			n = n.Right
		} else {
			n = n.Left
		}
	}
	return n == leaf
}

// String renders the tree as an indented outline.
func (tr *Tree) String() string {
	var b strings.Builder
	var walk func(n *Node, prefix string, label string)
	walk = func(n *Node, prefix, label string) {
		if n.Leaf {
			fmt.Fprintf(&b, "%s%s→ %s (support %d, purity %.2f)\n",
				prefix, label, n.Class, n.Support, n.Purity)
			return
		}
		fmt.Fprintf(&b, "%s%ssplit on %s <= %s\n", prefix, label, n.Attr, n.Threshold)
		walk(n.Left, prefix+"  ", "yes ")
		walk(n.Right, prefix+"  ", "no  ")
	}
	walk(tr.Root, "", "")
	return b.String()
}
