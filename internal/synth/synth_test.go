package synth_test

import (
	"testing"

	"intensional/internal/induct"
	"intensional/internal/relation"
	"intensional/internal/rules"
	"intensional/internal/synth"
)

func TestFleetShape(t *testing.T) {
	cat := synth.Fleet(synth.FleetConfig{ClassesPerType: 3, ShipsPerClass: 4, Seed: 7})
	cls, err := cat.Get(synth.FleetClass)
	if err != nil {
		t.Fatal(err)
	}
	if cls.Len() != 12*3 {
		t.Errorf("classes = %d, want 36", cls.Len())
	}
	ship, err := cat.Get(synth.FleetShip)
	if err != nil {
		t.Fatal(err)
	}
	if ship.Len() != 12*3*4 {
		t.Errorf("ships = %d, want 144", ship.Len())
	}
	typ, err := cat.Get(synth.FleetType)
	if err != nil {
		t.Fatal(err)
	}
	if typ.Len() != 12 {
		t.Errorf("types = %d, want 12", typ.Len())
	}
}

func TestFleetDeterministic(t *testing.T) {
	a := synth.Fleet(synth.FleetConfig{ClassesPerType: 5, ShipsPerClass: 2, Seed: 42})
	b := synth.Fleet(synth.FleetConfig{ClassesPerType: 5, ShipsPerClass: 2, Seed: 42})
	ra, _ := a.Get(synth.FleetClass)
	rb, _ := b.Get(synth.FleetClass)
	for i := range ra.Rows() {
		if ra.Row(i).Key() != rb.Row(i).Key() {
			t.Fatalf("row %d differs between same-seed fleets", i)
		}
	}
}

func TestFleetDisplacementsWithinTable1(t *testing.T) {
	cat := synth.Fleet(synth.FleetConfig{ClassesPerType: 6, ShipsPerClass: 1, Seed: 1})
	cls, _ := cat.Get(synth.FleetClass)
	ranges := map[string][2]int64{}
	for _, st := range synth.Table1 {
		ranges[st.Type] = [2]int64{st.MinDisp, st.MaxDisp}
	}
	ti := cls.Schema().MustIndex("Type")
	di := cls.Schema().MustIndex("Displacement")
	for _, row := range cls.Rows() {
		r := ranges[row[ti].Str()]
		d := row[di].Int64()
		if d < r[0] || d > r[1] {
			t.Errorf("class %v displacement %d outside Table 1 range %v", row, d, r)
		}
	}
}

// TestTable1Reproduction is the E5 experiment core: inducing per-type
// displacement characteristics from the generated fleet recovers every
// Table 1 range exactly (boundary classes pin the endpoints).
func TestTable1Reproduction(t *testing.T) {
	cat := synth.Fleet(synth.FleetConfig{ClassesPerType: 4, ShipsPerClass: 2, Seed: 3})
	d, err := synth.FleetDictionary(cat)
	if err != nil {
		t.Fatal(err)
	}
	cls, _ := cat.Get(synth.FleetClass)
	in := induct.New(d, induct.Options{})
	chars, err := in.InduceCharacteristics(cls, "Type", "Displacement",
		rules.Attr(synth.FleetClass, "Type"), rules.Attr(synth.FleetClass, "Displacement"))
	if err != nil {
		t.Fatal(err)
	}
	if len(chars) != len(synth.Table1) {
		t.Fatalf("characteristics = %d, want %d", len(chars), len(synth.Table1))
	}
	byType := map[string]*rules.Rule{}
	for _, r := range chars {
		byType[r.LHS[0].Lo.Str()] = r
	}
	for _, st := range synth.Table1 {
		r, ok := byType[st.Type]
		if !ok {
			t.Errorf("type %s missing", st.Type)
			continue
		}
		if r.RHS.Lo.Int64() != st.MinDisp || r.RHS.Hi.Int64() != st.MaxDisp {
			t.Errorf("%s: induced [%d..%d], Table 1 says [%d..%d]",
				st.Type, r.RHS.Lo.Int64(), r.RHS.Hi.Int64(), st.MinDisp, st.MaxDisp)
		}
	}
}

func TestFleetDictionary(t *testing.T) {
	cat := synth.Fleet(synth.FleetConfig{ClassesPerType: 2, ShipsPerClass: 1, Seed: 1})
	d, err := synth.FleetDictionary(cat)
	if err != nil {
		t.Fatal(err)
	}
	h, ok := d.Hierarchy(synth.FleetClass)
	if !ok || len(h.Subtypes) != 12 {
		t.Errorf("class hierarchy = %+v", h)
	}
	sh, ok := d.Hierarchy(synth.FleetShip)
	if !ok || len(sh.Subtypes) != 24 {
		t.Errorf("ship hierarchy subtypes = %d, want 24", len(sh.Subtypes))
	}
	if _, ok := d.LevelAbove(synth.FleetShip); !ok {
		t.Error("level link missing")
	}
}

func TestEmployees(t *testing.T) {
	cat := synth.Employees(200, 9)
	emp, err := cat.Get(synth.Employee)
	if err != nil {
		t.Fatal(err)
	}
	if emp.Len() != 200 {
		t.Fatalf("employees = %d", emp.Len())
	}
	ai := emp.Schema().MustIndex("Age")
	for _, row := range emp.Rows() {
		a := row[ai].Int64()
		if a < 18 || a > 65 {
			t.Errorf("age %d outside [18..65]", a)
		}
	}
	d, err := synth.EmployeeDictionary(cat)
	if err != nil {
		t.Fatal(err)
	}
	// Age → Position induction yields one clean rule per age band.
	set, err := induct.New(d, induct.Options{Nc: 2}).InduceAll()
	if err != nil {
		t.Fatal(err)
	}
	ageRules := 0
	for _, r := range set.Rules() {
		if r.LHS[0].Attr.EqualFold(rules.Attr(synth.Employee, "Age")) {
			ageRules++
			if !r.RHS.IsPoint() {
				t.Errorf("rule %s should have a point consequence", r)
			}
		}
	}
	if ageRules != 4 {
		t.Errorf("age rules = %d, want 4 (one per band):\n%s", ageRules, set)
	}
}

func TestRuleSetOfSize(t *testing.T) {
	set := synth.RuleSetOfSize(100)
	if set.Len() != 100 {
		t.Fatalf("rules = %d", set.Len())
	}
	// Exactly one rule covers the point 555.
	hits := 0
	for _, r := range set.Rules() {
		if r.LHS[0].Contains(relation.Int(555)) {
			hits++
		}
	}
	if hits != 1 {
		t.Errorf("rules covering 555 = %d, want 1", hits)
	}
}

func TestInduceCharacteristicsErrors(t *testing.T) {
	cat := synth.Employees(10, 1)
	d, err := synth.EmployeeDictionary(cat)
	if err != nil {
		t.Fatal(err)
	}
	emp, _ := cat.Get(synth.Employee)
	in := induct.New(d, induct.Options{})
	if _, err := in.InduceCharacteristics(emp, "nope", "Age",
		rules.Attr("E", "P"), rules.Attr("E", "A")); err == nil {
		t.Error("unknown class column should error")
	}
	if _, err := in.InduceCharacteristics(emp, "Position", "nope",
		rules.Attr("E", "P"), rules.Attr("E", "A")); err == nil {
		t.Error("unknown value column should error")
	}
}
