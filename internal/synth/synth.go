// Package synth generates deterministic synthetic databases for the
// experiments and benchmarks: the full navy battleship fleet of Table 1
// (the paper's proprietary SDC/UNISYS database is not available, so a
// generator parameterised by Table 1's published per-type displacement
// ranges stands in for it), the Employee database of Section 5.2.2, and
// scalable fleets for the cost-scaling benches.
package synth

import (
	"fmt"
	"math/rand"

	"intensional/internal/dict"
	"intensional/internal/relation"
	"intensional/internal/rules"
	"intensional/internal/storage"
)

// ShipType is one row of the paper's Table 1: a navy battleship type with
// its category and displacement range in tons.
type ShipType struct {
	Category string
	Type     string
	TypeName string
	MinDisp  int64
	MaxDisp  int64
}

// Table1 is the classification characteristics of navy battleships
// exactly as the paper's Table 1 lists them.
var Table1 = []ShipType{
	{"Subsurface", "SSBN", "Ballistic Nuclear Missile Submarine", 7250, 16600},
	{"Subsurface", "SSN", "Nuclear Submarine", 1720, 6000},
	{"Surface", "CVN", "Attack Aircraft Carrier", 75700, 81600},
	{"Surface", "CV", "Aircraft Carrier", 41900, 61000},
	{"Surface", "BB", "Battleship", 45000, 45000},
	{"Surface", "CGN", "Guided Nuclear Missile Crusier", 7600, 14200},
	{"Surface", "CG", "Guided Missile Crusier", 5670, 13700},
	{"Surface", "CA", "Gun Cruiser", 17000, 17000},
	{"Surface", "DDG", "Guided Missile Destroyer", 3370, 8300},
	{"Surface", "DD", "Destroyer", 2425, 7810},
	{"Surface", "FFG", "Guided Missile Frigate", 3605, 3605},
	{"Surface", "FF", "Frigate", 2360, 3011},
}

// FleetConfig parameterises the generated fleet.
type FleetConfig struct {
	// ClassesPerType is the number of ship classes generated for each
	// Table 1 type (minimum 1). The first and last class of each type sit
	// exactly at the type's displacement range boundaries, so inducing
	// per-type displacement characteristics recovers Table 1 verbatim.
	ClassesPerType int
	// ShipsPerClass is the number of ship instances per class.
	ShipsPerClass int
	// Seed drives the deterministic generator.
	Seed int64
}

// Fleet relation names.
const (
	FleetShip  = "SHIP"
	FleetClass = "CLASS"
	FleetType  = "TYPE"
)

// Fleet generates a catalog with SHIP(Id, Name, Class),
// CLASS(Class, ClassName, Type, Displacement), and
// TYPE(Type, TypeName, Category) drawn from Table 1.
func Fleet(cfg FleetConfig) *storage.Catalog {
	if cfg.ClassesPerType < 1 {
		cfg.ClassesPerType = 1
	}
	if cfg.ShipsPerClass < 1 {
		cfg.ShipsPerClass = 1
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	cat := storage.NewCatalog()

	typ := relation.New(FleetType, relation.MustSchema(
		relation.Column{Name: "Type", Type: relation.TString},
		relation.Column{Name: "TypeName", Type: relation.TString},
		relation.Column{Name: "Category", Type: relation.TString},
	))
	cls := relation.New(FleetClass, relation.MustSchema(
		relation.Column{Name: "Class", Type: relation.TString},
		relation.Column{Name: "ClassName", Type: relation.TString},
		relation.Column{Name: "Type", Type: relation.TString},
		relation.Column{Name: "Displacement", Type: relation.TInt},
	))
	ship := relation.New(FleetShip, relation.MustSchema(
		relation.Column{Name: "Id", Type: relation.TString},
		relation.Column{Name: "Name", Type: relation.TString},
		relation.Column{Name: "Class", Type: relation.TString},
	))

	serial := 100
	for ti, st := range Table1 {
		typ.MustInsert(relation.String(st.Type), relation.String(st.TypeName),
			relation.String(st.Category))
		for c := 0; c < cfg.ClassesPerType; c++ {
			code := fmt.Sprintf("%02d%02d", ti+1, c+1)
			disp := st.MinDisp
			switch {
			case c == cfg.ClassesPerType-1:
				disp = st.MaxDisp
			case c == 0:
				disp = st.MinDisp
			default:
				if st.MaxDisp > st.MinDisp {
					disp = st.MinDisp + rng.Int63n(st.MaxDisp-st.MinDisp+1)
				}
			}
			cls.MustInsert(relation.String(code),
				relation.String(fmt.Sprintf("%s-class-%d", st.Type, c+1)),
				relation.String(st.Type), relation.Int(disp))
			for s := 0; s < cfg.ShipsPerClass; s++ {
				id := fmt.Sprintf("%s%d", st.Type, serial)
				serial++
				ship.MustInsert(relation.String(id),
					relation.String(fmt.Sprintf("%s %d-%d", st.TypeName, c+1, s+1)),
					relation.String(code))
			}
		}
	}
	cat.Put(typ)
	cat.Put(cls)
	cat.Put(ship)
	return cat
}

// FleetDictionary builds the dictionary for a generated fleet: classes
// classified by Type, ships by Class, with the level link between them.
func FleetDictionary(cat *storage.Catalog) (*dict.Dictionary, error) {
	d := dict.New(cat)
	cls, err := cat.Get(FleetClass)
	if err != nil {
		return nil, err
	}
	shipHier := &dict.Hierarchy{Object: FleetShip, ClassifyingAttr: "Class"}
	classHier := &dict.Hierarchy{Object: FleetClass, ClassifyingAttr: "Type"}
	seenTypes := map[string]bool{}
	ci := cls.Schema().MustIndex("Class")
	ti := cls.Schema().MustIndex("Type")
	for _, row := range cls.Rows() {
		shipHier.Subtypes = append(shipHier.Subtypes, dict.Subtype{
			Name: "C" + row[ci].Str(), Value: row[ci],
		})
		if !seenTypes[row[ti].Str()] {
			seenTypes[row[ti].Str()] = true
			classHier.Subtypes = append(classHier.Subtypes, dict.Subtype{
				Name: row[ti].Str(), Value: row[ti],
			})
		}
	}
	if err := d.AddHierarchy(shipHier); err != nil {
		return nil, err
	}
	if err := d.AddHierarchy(classHier); err != nil {
		return nil, err
	}
	if err := d.AddLevelLink(dict.Link{
		From: rules.Attr(FleetShip, "Class"),
		To:   rules.Attr(FleetClass, "Class"),
	}); err != nil {
		return nil, err
	}
	return d, nil
}

// Employee relation name for the Section 5.2.2 example database.
const Employee = "EMPLOYEE"

// positions assigns job titles by age band, giving the induction
// algorithm clean Age → Position ranges like the paper's Employee
// example.
var positions = []struct {
	lo, hi int64
	title  string
}{
	{18, 25, "TRAINEE"},
	{26, 45, "ENGINEER"},
	{46, 58, "MANAGER"},
	{59, 65, "DIRECTOR"},
}

// Employees generates EMPLOYEE(Id, Name, Age, Position) with n rows.
func Employees(n int, seed int64) *storage.Catalog {
	rng := rand.New(rand.NewSource(seed))
	cat := storage.NewCatalog()
	emp := relation.New(Employee, relation.MustSchema(
		relation.Column{Name: "Id", Type: relation.TInt},
		relation.Column{Name: "Name", Type: relation.TString},
		relation.Column{Name: "Age", Type: relation.TInt},
		relation.Column{Name: "Position", Type: relation.TString},
	))
	for i := 0; i < n; i++ {
		band := positions[rng.Intn(len(positions))]
		age := band.lo + rng.Int63n(band.hi-band.lo+1)
		emp.MustInsert(relation.Int(int64(i+1)),
			relation.String(fmt.Sprintf("Employee %d", i+1)),
			relation.Int(age), relation.String(band.title))
	}
	cat.Put(emp)
	return cat
}

// EmployeeDictionary builds the dictionary for the Employee database:
// employees classified by Position.
func EmployeeDictionary(cat *storage.Catalog) (*dict.Dictionary, error) {
	d := dict.New(cat)
	h := &dict.Hierarchy{Object: Employee, ClassifyingAttr: "Position"}
	for _, p := range positions {
		h.Subtypes = append(h.Subtypes, dict.Subtype{
			Name: p.title, Value: relation.String(p.title),
		})
	}
	if err := d.AddHierarchy(h); err != nil {
		return nil, err
	}
	return d, nil
}

// RuleSetOfSize builds a synthetic rule base with n rules over one
// numeric attribute — the workload for the inference-scaling bench (B2).
// Rule i covers the interval [i*10, i*10+9] and concludes a distinct
// class value, so exactly one rule fires for any seeded point condition.
func RuleSetOfSize(n int) *rules.Set {
	set := rules.NewSet()
	for i := 0; i < n; i++ {
		lo := int64(i * 10)
		set.Add(&rules.Rule{
			LHS: []rules.Clause{rules.RangeClause(rules.Attr("R", "X"),
				relation.Int(lo), relation.Int(lo+9))},
			RHS:     rules.PointClause(rules.Attr("R", "Y"), relation.String(fmt.Sprintf("c%d", i))),
			Support: 10,
		})
	}
	return set
}
