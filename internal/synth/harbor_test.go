package synth_test

import (
	"testing"

	"intensional/internal/synth"
)

func TestHarborShape(t *testing.T) {
	cat := synth.Harbor(synth.HarborConfig{Ships: 30, Ports: 10, Visits: 100, Seed: 5})
	for name, want := range map[string]int{
		synth.HarborShip: 30,
		synth.HarborPort: 10,
	} {
		r, err := cat.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		if r.Len() != want {
			t.Errorf("%s = %d rows, want %d", name, r.Len(), want)
		}
	}
	visit, err := cat.Get(synth.HarborVisit)
	if err != nil {
		t.Fatal(err)
	}
	if visit.Len() == 0 || visit.Len() > 100 {
		t.Errorf("visits = %d", visit.Len())
	}
}

func TestHarborDefaultsAndDeterminism(t *testing.T) {
	a := synth.Harbor(synth.HarborConfig{Seed: 9, Visits: 5})
	b := synth.Harbor(synth.HarborConfig{Seed: 9, Visits: 5})
	ra, _ := a.Get(synth.HarborShip)
	rb, _ := b.Get(synth.HarborShip)
	if ra.Len() != rb.Len() || ra.Len() != 1 { // Ships defaults to 1
		t.Errorf("default ships = %d / %d", ra.Len(), rb.Len())
	}
	for i := range ra.Rows() {
		if ra.Row(i).Key() != rb.Row(i).Key() {
			t.Fatalf("row %d differs between same-seed harbors", i)
		}
	}
}

func TestHarborViolationInjection(t *testing.T) {
	cat := synth.Harbor(synth.HarborConfig{Ships: 30, Ports: 10, Visits: 50, Seed: 5, Violations: 1})
	ship, _ := cat.Get(synth.HarborShip)
	port, _ := cat.Get(synth.HarborPort)
	visit, _ := cat.Get(synth.HarborVisit)
	draft := map[string]int64{}
	for _, r := range ship.Rows() {
		draft[r[0].Str()] = r[2].Int64()
	}
	depth := map[string]int64{}
	for _, r := range port.Rows() {
		depth[r[0].Str()] = r[2].Int64()
	}
	violations := 0
	for _, r := range visit.Rows() {
		if draft[r[0].Str()] >= depth[r[1].Str()] {
			violations++
		}
	}
	if violations != 1 {
		t.Errorf("violations = %d, want 1", violations)
	}
}

func TestHarborDictionaryDeclares(t *testing.T) {
	cat := synth.Harbor(synth.HarborConfig{Ships: 5, Ports: 2, Visits: 5, Seed: 1})
	d, err := synth.HarborDictionary(cat)
	if err != nil {
		t.Fatal(err)
	}
	rels := d.Relationships()
	if len(rels) != 1 || rels[0].Name != synth.HarborVisit || len(rels[0].Links) != 2 {
		t.Errorf("relationships = %v", rels)
	}
}
