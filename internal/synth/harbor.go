package synth

import (
	"fmt"
	"math/rand"

	"intensional/internal/dict"
	"intensional/internal/relation"
	"intensional/internal/rules"
	"intensional/internal/storage"
)

// Harbor relation names — the Section 3.1 inter-object knowledge
// example: ships VISIT ports, and a visit requires the ship's draft to
// be less than the port's depth.
const (
	HarborShip  = "SHIP"
	HarborPort  = "PORT"
	HarborVisit = "VISIT"
)

// HarborConfig parameterises the generated harbor database.
type HarborConfig struct {
	Ships  int
	Ports  int
	Visits int
	Seed   int64
	// Violations, when positive, injects that many visits whose ship
	// draft is NOT below the port depth — for testing that comparison
	// induction refuses to induce the constraint from dirty data.
	Violations int
}

// Harbor generates SHIP(Id, Name, Draft), PORT(Port, PortName, Depth),
// and VISIT(Ship, Port) where every (clean) visit satisfies
// SHIP.Draft < PORT.Depth.
func Harbor(cfg HarborConfig) *storage.Catalog {
	if cfg.Ships < 1 {
		cfg.Ships = 1
	}
	if cfg.Ports < 1 {
		cfg.Ports = 1
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	cat := storage.NewCatalog()

	ship := relation.New(HarborShip, relation.MustSchema(
		relation.Column{Name: "Id", Type: relation.TString},
		relation.Column{Name: "Name", Type: relation.TString},
		relation.Column{Name: "Draft", Type: relation.TInt},
	))
	drafts := make([]int64, cfg.Ships)
	for i := 0; i < cfg.Ships; i++ {
		drafts[i] = 4 + rng.Int63n(12) // 4..15 metres
		ship.MustInsert(relation.String(fmt.Sprintf("S%03d", i+1)),
			relation.String(fmt.Sprintf("Vessel %d", i+1)), relation.Int(drafts[i]))
	}
	port := relation.New(HarborPort, relation.MustSchema(
		relation.Column{Name: "Port", Type: relation.TString},
		relation.Column{Name: "PortName", Type: relation.TString},
		relation.Column{Name: "Depth", Type: relation.TInt},
	))
	depths := make([]int64, cfg.Ports)
	for i := 0; i < cfg.Ports; i++ {
		depths[i] = 8 + rng.Int63n(20) // 8..27 metres
		port.MustInsert(relation.String(fmt.Sprintf("P%03d", i+1)),
			relation.String(fmt.Sprintf("Port %d", i+1)), relation.Int(depths[i]))
	}
	visit := relation.New(HarborVisit, relation.MustSchema(
		relation.Column{Name: "Ship", Type: relation.TString},
		relation.Column{Name: "Port", Type: relation.TString},
	))
	added := 0
	for attempts := 0; added < cfg.Visits && attempts < cfg.Visits*50; attempts++ {
		si := rng.Intn(cfg.Ships)
		pi := rng.Intn(cfg.Ports)
		if drafts[si] >= depths[pi] {
			continue // the draft constraint forbids this visit
		}
		visit.MustInsert(relation.String(fmt.Sprintf("S%03d", si+1)),
			relation.String(fmt.Sprintf("P%03d", pi+1)))
		added++
	}
	for v := 0; v < cfg.Violations; v++ {
		// Force a dirty visit: deepest-draft ship into shallowest port.
		si, pi := 0, 0
		for i := range drafts {
			if drafts[i] > drafts[si] {
				si = i
			}
		}
		for i := range depths {
			if depths[i] < depths[pi] {
				pi = i
			}
		}
		if drafts[si] < depths[pi] {
			break // data makes injection impossible
		}
		visit.MustInsert(relation.String(fmt.Sprintf("S%03d", si+1)),
			relation.String(fmt.Sprintf("P%03d", pi+1)))
	}
	cat.Put(ship)
	cat.Put(port)
	cat.Put(visit)
	return cat
}

// HarborDictionary declares the VISIT relationship linking ships and
// ports.
func HarborDictionary(cat *storage.Catalog) (*dict.Dictionary, error) {
	d := dict.New(cat)
	if err := d.AddRelationship(&dict.Relationship{
		Name: HarborVisit,
		Links: []dict.Link{
			{From: rules.Attr(HarborVisit, "Ship"), To: rules.Attr(HarborShip, "Id")},
			{From: rules.Attr(HarborVisit, "Port"), To: rules.Attr(HarborPort, "Port")},
		},
	}); err != nil {
		return nil, err
	}
	return d, nil
}
