package query

import (
	"testing"

	"intensional/internal/relation"
	"intensional/internal/shipdb"
	"intensional/internal/sqlparse"
	"intensional/internal/storage"
)

func mustDML(t *testing.T, src string) sqlparse.Stmt {
	t.Helper()
	st, err := sqlparse.ParseStatement(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return st
}

func apply(t *testing.T, cat *storage.Catalog, src string) *Mutation {
	t.Helper()
	m, err := ApplyMutation(cat, mustDML(t, src))
	if err != nil {
		t.Fatalf("apply %q: %v", src, err)
	}
	return m
}

func TestApplyInsert(t *testing.T) {
	cat := shipdb.Catalog()
	before, _ := cat.Get(shipdb.Submarine)
	n := before.Len()

	m := apply(t, cat, `INSERT INTO SUBMARINE VALUES ('SSN790', 'South Dakota', '0201')`)
	if m.Kind != "insert" || m.Table != shipdb.Submarine || m.Count() != 1 {
		t.Errorf("mutation = %+v", m)
	}
	after, _ := cat.Get(shipdb.Submarine)
	if after.Len() != n+1 {
		t.Errorf("len after insert = %d, want %d", after.Len(), n+1)
	}
	// Copy-on-write: the relation object handed out before must be intact.
	if before.Len() != n {
		t.Errorf("original relation mutated: len %d, want %d", before.Len(), n)
	}
}

func TestApplyInsertColumnListNullFill(t *testing.T) {
	cat := shipdb.Catalog()
	apply(t, cat, `INSERT INTO CLASS (Class, Displacement) VALUES ('9901', 5000)`)
	cls, _ := cat.Get(shipdb.Class)
	last := cls.Row(cls.Len() - 1)
	if !last[0].Equal(relation.String("9901")) || !last[3].Equal(relation.Int(5000)) {
		t.Errorf("row = %v", last)
	}
	if !last[1].IsNull() || !last[2].IsNull() {
		t.Errorf("unmentioned columns should be NULL, got %v", last)
	}
}

func TestApplyInsertErrors(t *testing.T) {
	cat := shipdb.Catalog()
	cls, _ := cat.Get(shipdb.Class)
	n := cls.Len()
	for _, src := range []string{
		`INSERT INTO nosuch VALUES (1)`,
		`INSERT INTO CLASS VALUES ('x')`,                         // arity
		`INSERT INTO CLASS (Nope) VALUES (1)`,                    // unknown column
		`INSERT INTO CLASS (Class, Class) VALUES ('a', 'b')`,     // dup column
		`INSERT INTO CLASS VALUES ('a', 'b', 'c', 'not-an-int')`, // type
	} {
		if _, err := ApplyMutation(cat, mustDML(t, src)); err == nil {
			t.Errorf("%q unexpectedly succeeded", src)
		}
	}
	// Multi-row atomicity: second row fails, first must not land.
	src := `INSERT INTO CLASS (Class) VALUES ('9901'), ('a', 'b')`
	if _, err := sqlparse.ParseStatement(src); err == nil {
		t.Fatalf("arity mismatch should fail at parse: %q", src)
	}
	bad := mustDML(t, `INSERT INTO CLASS VALUES ('9901', 'x', 'SSN', 1), ('9902', 'y', 'SSN', 'oops')`)
	if _, err := ApplyMutation(cat, bad); err == nil {
		t.Fatal("typed row 2 should fail the whole statement")
	}
	cls2, _ := cat.Get(shipdb.Class)
	if cls2.Len() != n {
		t.Errorf("failed statement changed the catalog: len %d, want %d", cls2.Len(), n)
	}
}

func TestApplyDelete(t *testing.T) {
	cat := shipdb.Catalog()
	m := apply(t, cat, `DELETE FROM CLASS WHERE Displacement > 8000`)
	// Ohio (16600) and Typhoon (30000).
	if len(m.Deleted) != 2 || len(m.Inserted) != 0 {
		t.Fatalf("deleted %d inserted %d", len(m.Deleted), len(m.Inserted))
	}
	cls, _ := cat.Get(shipdb.Class)
	if cls.Len() != 11 {
		t.Errorf("len = %d, want 11", cls.Len())
	}
	for _, d := range m.Deleted {
		if c, _ := d[3].Compare(relation.Int(8000)); c <= 0 {
			t.Errorf("captured wrong tuple %v", d)
		}
	}

	all := apply(t, cat, `DELETE FROM CLASS`)
	if len(all.Deleted) != 11 {
		t.Errorf("bare DELETE removed %d, want 11", len(all.Deleted))
	}
}

func TestApplyDeleteQualifiedAndColCol(t *testing.T) {
	cat := shipdb.Catalog()
	m := apply(t, cat, `DELETE FROM SONAR WHERE SONAR.Sonar = SONAR.SonarType`)
	if len(m.Deleted) != 1 { // TACTAS|TACTAS
		t.Errorf("deleted %d, want 1 (TACTAS)", len(m.Deleted))
	}
	if _, err := ApplyMutation(cat, mustDML(t, `DELETE FROM SONAR WHERE CLASS.Type = 'SSN'`)); err == nil {
		t.Error("foreign qualifier should be rejected")
	}
}

func TestApplyUpdate(t *testing.T) {
	cat := shipdb.Catalog()
	m := apply(t, cat, `UPDATE CLASS SET Displacement = 7000, ClassName = 'Renamed' WHERE Type = 'SSBN' AND Displacement < 8000`)
	// Benjamin Franklin (7250) and Lafayette (7250).
	if m.Count() != 2 || len(m.Deleted) != 2 || len(m.Inserted) != 2 {
		t.Fatalf("mutation = %+v", m)
	}
	for i := range m.Inserted {
		if !m.Inserted[i][3].Equal(relation.Int(7000)) || !m.Inserted[i][1].Equal(relation.String("Renamed")) {
			t.Errorf("new image %v", m.Inserted[i])
		}
		if !m.Deleted[i][3].Equal(relation.Int(7250)) {
			t.Errorf("old image %v", m.Deleted[i])
		}
		// Key column untouched.
		if !m.Inserted[i][0].Equal(m.Deleted[i][0]) {
			t.Errorf("key changed: %v -> %v", m.Deleted[i], m.Inserted[i])
		}
	}
	cls, _ := cat.Get(shipdb.Class)
	got := 0
	for _, row := range cls.Rows() {
		if row[1].Equal(relation.String("Renamed")) {
			got++
		}
	}
	if got != 2 {
		t.Errorf("%d renamed rows in catalog, want 2", got)
	}
}

func TestApplyUpdateErrors(t *testing.T) {
	cat := shipdb.Catalog()
	cls, _ := cat.Get(shipdb.Class)
	want := cls.String()
	for _, src := range []string{
		`UPDATE CLASS SET Nope = 1`,
		`UPDATE CLASS SET Displacement = 'not-an-int'`,
		`UPDATE CLASS SET Displacement = 1, Displacement = 2`,
		`UPDATE nosuch SET a = 1`,
	} {
		if _, err := ApplyMutation(cat, mustDML(t, src)); err == nil {
			t.Errorf("%q unexpectedly succeeded", src)
		}
	}
	cls2, _ := cat.Get(shipdb.Class)
	if cls2.String() != want {
		t.Error("failed updates changed the catalog")
	}
}

func TestApplyMutationRejectsSelect(t *testing.T) {
	cat := shipdb.Catalog()
	if _, err := ApplyMutation(cat, mustDML(t, `SELECT Class FROM CLASS`)); err == nil {
		t.Error("SELECT accepted as mutation")
	}
}

// TestApplyMutationSnapshotIsolation pins the contract the core layer
// builds on: mutating a shallow clone leaves the original catalog's view
// untouched.
func TestApplyMutationSnapshotIsolation(t *testing.T) {
	cat := shipdb.Catalog()
	oldRel, _ := cat.Get(shipdb.Class)
	oldVersion := oldRel.Version()

	work := cat.ShallowClone()
	apply(t, work, `DELETE FROM CLASS`)
	apply(t, work, `INSERT INTO SUBMARINE VALUES ('X1', 'Ghost', '0201')`)

	origCls, _ := cat.Get(shipdb.Class)
	if origCls.Len() != 13 || origCls.Version() != oldVersion {
		t.Errorf("original catalog saw the mutation: len %d version %d", origCls.Len(), origCls.Version())
	}
	origSub, _ := cat.Get(shipdb.Submarine)
	if origSub.Len() != 24 {
		t.Errorf("original SUBMARINE saw the insert: len %d", origSub.Len())
	}
	newCls, _ := work.Get(shipdb.Class)
	if newCls.Len() != 0 {
		t.Errorf("clone catalog missed the delete: len %d", newCls.Len())
	}
	// Untouched relations are shared, not copied.
	oldSon, _ := cat.Get(shipdb.Sonar)
	newSon, _ := work.Get(shipdb.Sonar)
	if oldSon != newSon {
		t.Error("untouched relation was copied by ShallowClone")
	}
}
