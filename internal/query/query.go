// Package query is the traditional query processor of the system
// architecture (Figure 6): it parses the SQL subset the paper's examples
// use, lowers it onto the QUEL executor for the extensional answer, and
// extracts the structural analysis (tables, join predicates, restriction
// intervals) that the inference processor derives intensional answers
// from.
package query

import (
	"fmt"
	"strings"

	"intensional/internal/quel"
	"intensional/internal/relation"
	"intensional/internal/rules"
	"intensional/internal/sqlparse"
	"intensional/internal/storage"
)

// Restriction is one "attribute op constant" condition from the query,
// normalised to an interval when the operator has an interval form.
type Restriction struct {
	Attr        rules.AttrRef
	Op          string
	Val         relation.Value
	HasInterval bool
	Interval    rules.Interval
	// Conjunct is the index of the WHERE conjunct this restriction came
	// from, in flattening order — the hook Prepare uses to drop the
	// conjunct when the semantic optimizer proves it redundant. Only
	// meaningful for restrictions extracted from a conjunctive query;
	// synthesized (implied) restrictions leave it zero.
	Conjunct int
}

// String renders the restriction as written in the query.
func (r Restriction) String() string {
	return fmt.Sprintf("%s %s %s", r.Attr, r.Op, r.Val.GoString())
}

// JoinPred is one equality between attributes of two tables.
type JoinPred struct {
	L, R rules.AttrRef
}

// String renders the join predicate.
func (j JoinPred) String() string { return j.L.String() + " = " + j.R.String() }

// Analysis is the structural summary of a query that type inference works
// from. Attribute references use resolved relation names, never aliases.
type Analysis struct {
	Tables       []string
	Joins        []JoinPred
	Restrictions []Restriction
	// Projection lists the attributes the query selects — the inference
	// renderer uses it to rank which intensional descriptions the user
	// most likely wants.
	Projection []rules.AttrRef
	// Conjunctive reports whether the WHERE clause was a pure conjunction
	// of comparisons; intensional answers are only derived for
	// conjunctive queries (the paper's setting).
	Conjunctive bool
}

// Processor executes SQL queries against a catalog.
type Processor struct {
	cat      *storage.Catalog
	cache    *quel.IndexCache
	counters *quel.Counters
	logf     func(format string, args ...any)
}

// New creates a processor over the catalog.
func New(cat *storage.Catalog) *Processor { return &Processor{cat: cat} }

// UseIndexCache shares one secondary-index cache across every session
// the processor spawns. Without it each query builds indexes from
// scratch: the executor creates a fresh QUEL session per statement, so a
// per-session cache never survives long enough to help. The cache must
// only outlive one immutable snapshot of the catalog.
func (p *Processor) UseIndexCache(c *quel.IndexCache) { p.cache = c }

// UseCounters wires all sessions' planner decisions to shared counters.
func (p *Processor) UseCounters(c *quel.Counters) { p.counters = c }

// UseLogf installs a logger for planner diagnostics.
func (p *Processor) UseLogf(f func(format string, args ...any)) { p.logf = f }

// session creates a QUEL session with the processor's cache and counters
// attached and the binder's range variables declared.
func (p *Processor) session(b *binder) (*quel.Session, error) {
	sess := quel.NewSession(p.cat)
	if p.cache != nil {
		sess.SetIndexCache(p.cache)
	}
	if p.counters != nil {
		sess.SetCounters(p.counters)
	}
	if p.logf != nil {
		sess.SetLogf(p.logf)
	}
	for _, name := range b.bindings {
		if err := sess.SetRange(name, b.tables[strings.ToLower(name)]); err != nil {
			return nil, err
		}
	}
	return sess, nil
}

// Run parses and executes the query, returning the extensional answer and
// the structural analysis.
func (p *Processor) Run(sql string) (*relation.Relation, *Analysis, error) {
	sel, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, nil, err
	}
	return p.RunSelect(sel)
}

// binder resolves table bindings and column references for one query.
type binder struct {
	cat      *storage.Catalog
	bindings []string                    // binding names in FROM order
	tables   map[string]string           // lower(binding) → table name
	schemas  map[string]*relation.Schema // lower(binding) → schema
}

func newBinder(cat *storage.Catalog, from []sqlparse.TableRef) (*binder, error) {
	b := &binder{
		cat:     cat,
		tables:  make(map[string]string),
		schemas: make(map[string]*relation.Schema),
	}
	for _, ref := range from {
		rel, err := cat.Get(ref.Table)
		if err != nil {
			return nil, err
		}
		name := ref.Binding()
		key := strings.ToLower(name)
		if _, dup := b.tables[key]; dup {
			return nil, fmt.Errorf("query: duplicate table binding %q", name)
		}
		b.bindings = append(b.bindings, name)
		b.tables[key] = rel.Name()
		b.schemas[key] = rel.Schema()
	}
	return b, nil
}

// resolve maps a possibly-unqualified column to (binding, column,
// relation name). Unqualified names must match exactly one table.
func (b *binder) resolve(table, column string) (binding, col, relName string, err error) {
	// Column names are returned in their declared spelling so the analysis
	// matches induced rules regardless of the case used in the query.
	if table != "" {
		key := strings.ToLower(table)
		schema, ok := b.schemas[key]
		if !ok {
			return "", "", "", fmt.Errorf("query: unknown table %q", table)
		}
		ci, ok := schema.Index(column)
		if !ok {
			return "", "", "", fmt.Errorf("query: table %s has no column %q", b.tables[key], column)
		}
		return table, schema.Col(ci).Name, b.tables[key], nil
	}
	var found []string
	for _, name := range b.bindings {
		if _, ok := b.schemas[strings.ToLower(name)].Index(column); ok {
			found = append(found, name)
		}
	}
	switch len(found) {
	case 0:
		return "", "", "", fmt.Errorf("query: no table has column %q", column)
	case 1:
		key := strings.ToLower(found[0])
		ci, _ := b.schemas[key].Index(column)
		return found[0], b.schemas[key].Col(ci).Name, b.tables[key], nil
	default:
		return "", "", "", fmt.Errorf("query: column %q is ambiguous (in %s)", column, strings.Join(found, ", "))
	}
}

// RunSelect executes a parsed SELECT.
func (p *Processor) RunSelect(sel *sqlparse.Select) (*relation.Relation, *Analysis, error) {
	prep, err := p.PrepareSelect("", sel, nil)
	if err != nil {
		return nil, nil, err
	}
	rel, err := prep.Run()
	if err != nil {
		return nil, nil, err
	}
	return rel, prep.Analysis, nil
}

// buildRetrieve lowers the SELECT's projection and ordering onto a QUEL
// retrieve statement, leaving the qualification for the caller.
func buildRetrieve(b *binder, sel *sqlparse.Select) (*quel.RetrieveStmt, error) {
	st := &quel.RetrieveStmt{Unique: sel.Distinct}
	if sel.Star {
		for _, name := range b.bindings {
			schema := b.schemas[strings.ToLower(name)]
			for _, col := range schema.Columns() {
				st.Target = append(st.Target, quel.Target{
					Col: quel.ColRef{Var: name, Attr: col.Name},
				})
			}
		}
	} else {
		for _, c := range sel.Columns() {
			binding, col, _, err := b.resolve(c.Table, c.Column)
			if err != nil {
				return nil, err
			}
			st.Target = append(st.Target, quel.Target{
				As:  c.As,
				Col: quel.ColRef{Var: binding, Attr: col},
			})
		}
	}
	for _, o := range sel.OrderBy {
		binding, col, _, err := b.resolve(o.Col.Table, o.Col.Column)
		if err != nil {
			return nil, err
		}
		st.SortBy = append(st.SortBy, quel.SortItem{
			Col:  quel.ColRef{Var: binding, Attr: col},
			Desc: o.Desc,
		})
	}
	return st, nil
}

// lowerExpr maps the SQL expression onto the QUEL expression grammar,
// resolving unqualified columns.
func lowerExpr(b *binder, e sqlparse.Expr) (quel.Expr, error) {
	switch e := e.(type) {
	case *sqlparse.Compare:
		l, err := lowerOperand(b, e.L)
		if err != nil {
			return nil, err
		}
		r, err := lowerOperand(b, e.R)
		if err != nil {
			return nil, err
		}
		return &quel.BinExpr{Op: e.Op, L: l, R: r}, nil
	case *sqlparse.And:
		terms := make([]quel.Expr, len(e.Terms))
		for i, t := range e.Terms {
			q, err := lowerExpr(b, t)
			if err != nil {
				return nil, err
			}
			terms[i] = q
		}
		return &quel.AndExpr{Terms: terms}, nil
	case *sqlparse.Or:
		terms := make([]quel.Expr, len(e.Terms))
		for i, t := range e.Terms {
			q, err := lowerExpr(b, t)
			if err != nil {
				return nil, err
			}
			terms[i] = q
		}
		return &quel.OrExpr{Terms: terms}, nil
	case *sqlparse.Not:
		q, err := lowerExpr(b, e.Term)
		if err != nil {
			return nil, err
		}
		return &quel.NotExpr{Term: q}, nil
	default:
		return nil, fmt.Errorf("query: unsupported expression %T", e)
	}
}

func lowerOperand(b *binder, o sqlparse.Operand) (quel.Operand, error) {
	switch o := o.(type) {
	case sqlparse.Col:
		binding, col, _, err := b.resolve(o.Table, o.Column)
		if err != nil {
			return nil, err
		}
		return quel.ColOperand{Col: quel.ColRef{Var: binding, Attr: col}}, nil
	case sqlparse.Lit:
		return quel.ConstOperand{Val: o.Val}, nil
	default:
		return nil, fmt.Errorf("query: unsupported operand %T", o)
	}
}

// analyse extracts the structural summary used by type inference.
func analyse(b *binder, sel *sqlparse.Select) (*Analysis, error) {
	an := &Analysis{Conjunctive: true}
	for _, name := range b.bindings {
		an.Tables = append(an.Tables, b.tables[strings.ToLower(name)])
	}
	if sel.Star {
		for _, name := range b.bindings {
			key := strings.ToLower(name)
			for _, col := range b.schemas[key].Columns() {
				an.Projection = append(an.Projection, rules.Attr(b.tables[key], col.Name))
			}
		}
	} else {
		for _, c := range sel.Columns() {
			_, col, relName, err := b.resolve(c.Table, c.Column)
			if err != nil {
				return nil, err
			}
			an.Projection = append(an.Projection, rules.Attr(relName, col))
		}
	}
	conjuncts := splitSQLConjuncts(sel.Where)
	for ci, c := range conjuncts {
		cmp, ok := c.(*sqlparse.Compare)
		if !ok {
			an.Conjunctive = false
			continue
		}
		lc, lIsCol := cmp.L.(sqlparse.Col)
		rc, rIsCol := cmp.R.(sqlparse.Col)
		ll, lIsLit := cmp.L.(sqlparse.Lit)
		rl, rIsLit := cmp.R.(sqlparse.Lit)
		switch {
		case lIsCol && rIsCol && cmp.Op == "=":
			_, lcol, lrel, err := b.resolve(lc.Table, lc.Column)
			if err != nil {
				return nil, err
			}
			_, rcol, rrel, err := b.resolve(rc.Table, rc.Column)
			if err != nil {
				return nil, err
			}
			an.Joins = append(an.Joins, JoinPred{
				L: rules.Attr(lrel, lcol),
				R: rules.Attr(rrel, rcol),
			})
		case lIsCol && rIsLit:
			r, err := makeRestriction(b, lc, cmp.Op, rl.Val, ci)
			if err != nil {
				return nil, err
			}
			an.Restrictions = append(an.Restrictions, r)
		case rIsCol && lIsLit:
			r, err := makeRestriction(b, rc, relation.FlipOp(cmp.Op), ll.Val, ci)
			if err != nil {
				return nil, err
			}
			an.Restrictions = append(an.Restrictions, r)
		default:
			an.Conjunctive = false
		}
	}
	return an, nil
}

// splitSQLConjuncts flattens the WHERE clause's top-level conjunction.
// Both the analyser and the Prepare rewriter index conjuncts by position
// in this flattening, so redundant-restriction dropping lines up with
// the analysis that proposed it.
func splitSQLConjuncts(e sqlparse.Expr) []sqlparse.Expr {
	if e == nil {
		return nil
	}
	if a, ok := e.(*sqlparse.And); ok {
		var out []sqlparse.Expr
		for _, t := range a.Terms {
			out = append(out, splitSQLConjuncts(t)...)
		}
		return out
	}
	return []sqlparse.Expr{e}
}

func makeRestriction(b *binder, c sqlparse.Col, op string, v relation.Value, conjunct int) (Restriction, error) {
	_, col, relName, err := b.resolve(c.Table, c.Column)
	if err != nil {
		return Restriction{}, err
	}
	r := Restriction{Attr: rules.Attr(relName, col), Op: op, Val: v, Conjunct: conjunct}
	if iv, err := rules.FromOp(op, v); err == nil {
		r.HasInterval = true
		r.Interval = iv
	}
	return r, nil
}
