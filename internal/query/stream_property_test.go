package query_test

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"intensional/internal/query"
)

// cancelAfter is a context whose Err starts reporting Canceled after a
// fixed number of checks — a deterministic stand-in for a caller that
// cancels mid-stream. The streaming executor checks the context at
// batch boundaries, so the budget maps to a point inside the pipeline.
type cancelAfter struct {
	context.Context
	budget *int
}

func (c cancelAfter) Err() error {
	if *c.budget <= 0 {
		return context.Canceled
	}
	*c.budget--
	return nil
}

// randomStreamSQL decorates the shared conjunctive generator with the
// clauses the streaming operators care about: DISTINCT (Distinct),
// ORDER BY (Sort), and an occasional aggregate (Aggregate).
func randomStreamSQL(rr *rand.Rand, join bool) string {
	if !join && rr.Intn(4) == 0 {
		terms := []string{fmt.Sprintf("R.V %s %d",
			[]string{"<", "<=", ">", ">="}[rr.Intn(4)], rr.Intn(31)-5)}
		return "SELECT K, COUNT(*), SUM(V), MIN(V), AVG(V) FROM R WHERE " +
			strings.Join(terms, " AND ") + " GROUP BY K ORDER BY K"
	}
	sql := randomConjunctiveSQL(rr, join)
	if rr.Intn(3) == 0 {
		sql = strings.Replace(sql, "SELECT ", "SELECT DISTINCT ", 1)
	}
	if !join && rr.Intn(3) == 0 {
		sql += " ORDER BY K"
		if rr.Intn(2) == 0 {
			sql += " DESC"
		}
	}
	return sql
}

// TestStreamingMatchesMaterialized: under seeded random catalogs and
// random conjunctive queries, the streaming operator pipeline must
// return byte-identical results — rows, order, and schema — to the
// retained materializing executor, and must stay correct (or fail with
// context.Canceled, never wrong rows) when the context is cancelled
// mid-stream.
func TestStreamingMatchesMaterialized(t *testing.T) {
	prop := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		join := rr.Intn(3) == 0
		cat := propCatalog(rr, join)
		sql := randomStreamSQL(rr, join)

		proc := query.New(cat)
		prep, err := proc.Prepare(sql, nil)
		if err != nil {
			t.Logf("seed %d: prepare %q: %v", seed, sql, err)
			return false
		}
		want, err := prep.RunMaterialized()
		if err != nil {
			t.Logf("seed %d: materialized run %q: %v", seed, sql, err)
			return false
		}
		got, err := prep.Run()
		if err != nil {
			t.Logf("seed %d: streaming run %q: %v", seed, sql, err)
			return false
		}

		gotKeys, wantKeys := rowKeys(got), rowKeys(want)
		if len(gotKeys) != len(wantKeys) {
			t.Logf("seed %d: %q streaming %d rows, materialized %d\nplan:\n%s",
				seed, sql, len(gotKeys), len(wantKeys), prep.Describe())
			return false
		}
		for i := range gotKeys {
			if gotKeys[i] != wantKeys[i] {
				t.Logf("seed %d: %q row %d differs: %q vs %q", seed, sql, i, gotKeys[i], wantKeys[i])
				return false
			}
		}
		if gs, ws := got.Schema(), want.Schema(); gs.Len() != ws.Len() {
			t.Logf("seed %d: %q schema width %d vs %d", seed, sql, gs.Len(), ws.Len())
			return false
		} else {
			for i := 0; i < gs.Len(); i++ {
				if gs.Col(i).Name != ws.Col(i).Name {
					t.Logf("seed %d: %q column %d named %q vs %q",
						seed, sql, i, gs.Col(i).Name, ws.Col(i).Name)
					return false
				}
			}
		}

		// Cancellation mid-stream: the run either completes with the
		// correct result (cancellation landed after the last batch) or
		// fails with context.Canceled — never wrong rows.
		budget := rr.Intn(4)
		cres, err := prep.RunContext(cancelAfter{context.Background(), &budget})
		if err != nil {
			if !errors.Is(err, context.Canceled) {
				t.Logf("seed %d: cancelled run %q: got err %v, want context.Canceled", seed, sql, err)
				return false
			}
			return true
		}
		cKeys := rowKeys(cres)
		if len(cKeys) != len(wantKeys) {
			t.Logf("seed %d: %q cancelled run returned %d rows, want %d or an error",
				seed, sql, len(cKeys), len(wantKeys))
			return false
		}
		for i := range cKeys {
			if cKeys[i] != wantKeys[i] {
				t.Logf("seed %d: %q cancelled-run row %d differs: %q vs %q",
					seed, sql, i, cKeys[i], wantKeys[i])
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
