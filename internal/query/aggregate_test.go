package query

import (
	"testing"

	"intensional/internal/relation"
	"intensional/internal/shipdb"
)

// TestGroupByTypeSummary: the classic summarised answer over the ship
// test bed — per-type class counts and displacement ranges, which is
// Table 1's shape computed by SQL instead of induction.
func TestGroupByTypeSummary(t *testing.T) {
	p := New(shipdb.Catalog())
	rel, an, err := p.Run(`
		SELECT Type, COUNT(*), MIN(Displacement), MAX(Displacement), AVG(Displacement)
		FROM CLASS GROUP BY Type ORDER BY Type`)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 2 {
		t.Fatalf("groups = %d:\n%s", rel.Len(), rel)
	}
	// SSBN: 4 classes, 7250..30000; SSN: 9 classes, 2145..6955.
	row := rel.Row(0)
	if row[0].Str() != "SSBN" || row[1].Int64() != 4 ||
		row[2].Int64() != 7250 || row[3].Int64() != 30000 {
		t.Errorf("SSBN row = %v", row)
	}
	avg := row[4].Float64()
	if avg < 15000 || avg > 16000 { // (16600+7250+7250+30000)/4 = 15275
		t.Errorf("SSBN avg = %v", avg)
	}
	row = rel.Row(1)
	if row[0].Str() != "SSN" || row[1].Int64() != 9 ||
		row[2].Int64() != 2145 || row[3].Int64() != 6955 {
		t.Errorf("SSN row = %v", row)
	}
	if an == nil || len(an.Projection) != 1 {
		t.Errorf("analysis projection = %v", an.Projection)
	}
}

func TestAggregateNoGroupBy(t *testing.T) {
	p := New(shipdb.Catalog())
	rel, _, err := p.Run(`SELECT COUNT(*), SUM(Displacement) FROM CLASS WHERE Type = "SSBN"`)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 1 {
		t.Fatalf("rows = %d", rel.Len())
	}
	if rel.Row(0)[0].Int64() != 4 || rel.Row(0)[1].Int64() != 61100 {
		t.Errorf("row = %v", rel.Row(0))
	}
	names := rel.Schema().Names()
	if names[0] != "count" || names[1] != "sum_Displacement" {
		t.Errorf("labels = %v", names)
	}
}

func TestAggregateEmptyInput(t *testing.T) {
	p := New(shipdb.Catalog())
	rel, _, err := p.Run(`SELECT COUNT(*), MIN(Displacement) FROM CLASS WHERE Displacement > 999999`)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 1 {
		t.Fatalf("rows = %d", rel.Len())
	}
	if rel.Row(0)[0].Int64() != 0 || !rel.Row(0)[1].IsNull() {
		t.Errorf("row = %v", rel.Row(0))
	}
	// Grouped aggregates over empty input produce zero groups.
	rel, _, err = p.Run(`SELECT Type, COUNT(*) FROM CLASS WHERE Displacement > 999999 GROUP BY Type`)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 0 {
		t.Errorf("grouped rows = %d, want 0", rel.Len())
	}
}

func TestCountColumnSkipsNulls(t *testing.T) {
	cat := shipdb.Catalog()
	cls, _ := cat.Get("CLASS")
	cls.MustInsert(relation.String("9999"), relation.Null(), relation.String("SSN"), relation.Null())
	p := New(cat)
	rel, _, err := p.Run(`SELECT COUNT(*), COUNT(Displacement) FROM CLASS`)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Row(0)[0].Int64() != 14 || rel.Row(0)[1].Int64() != 13 {
		t.Errorf("counts = %v", rel.Row(0))
	}
}

func TestAggregateWithJoinAndAlias(t *testing.T) {
	p := New(shipdb.Catalog())
	rel, _, err := p.Run(`
		SELECT CLASS.Type, COUNT(*) AS ships
		FROM SUBMARINE, CLASS
		WHERE SUBMARINE.Class = CLASS.Class
		GROUP BY CLASS.Type
		ORDER BY ships DESC`)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 2 {
		t.Fatalf("groups = %d", rel.Len())
	}
	if rel.Schema().Names()[1] != "ships" {
		t.Errorf("alias = %v", rel.Schema().Names())
	}
	// 17 SSN ships, 7 SSBN ships; DESC puts SSN first.
	if rel.Row(0)[0].Str() != "SSN" || rel.Row(0)[1].Int64() != 17 {
		t.Errorf("row 0 = %v", rel.Row(0))
	}
	if rel.Row(1)[1].Int64() != 7 {
		t.Errorf("row 1 = %v", rel.Row(1))
	}
}

func TestAvgOverFloats(t *testing.T) {
	cat := shipdb.Catalog()
	r := relation.New("M", relation.MustSchema(
		relation.Column{Name: "G", Type: relation.TString},
		relation.Column{Name: "F", Type: relation.TFloat},
	))
	r.MustInsert(relation.String("a"), relation.Float(1.5))
	r.MustInsert(relation.String("a"), relation.Float(2.5))
	cat.Put(r)
	p := New(cat)
	rel, _, err := p.Run(`SELECT G, AVG(F), SUM(F) FROM M GROUP BY G`)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Row(0)[1].Float64() != 2.0 || rel.Row(0)[2].Float64() != 4.0 {
		t.Errorf("row = %v", rel.Row(0))
	}
}

func TestAggregateErrors(t *testing.T) {
	p := New(shipdb.Catalog())
	bad := []string{
		`SELECT Class, COUNT(*) FROM CLASS`,              // Class not grouped
		`SELECT * FROM CLASS GROUP BY Type`,              // star with grouping
		`SELECT DISTINCT COUNT(*) FROM CLASS`,            // distinct with aggregate
		`SELECT COUNT(*) FROM CLASS ORDER BY Type`,       // order by non-output column
		`SELECT COUNT(Nope) FROM CLASS`,                  // unknown aggregate arg
		`SELECT Type, COUNT(*) FROM CLASS GROUP BY Nope`, // unknown group column
		`SELECT SUM(*) FROM CLASS`,                       // only COUNT takes *
		`SELECT MIN(Type FROM CLASS`,                     // unterminated call
	}
	for _, sql := range bad {
		if _, _, err := p.Run(sql); err == nil {
			t.Errorf("Run(%q): expected error", sql)
		}
	}
}

func TestGroupByWithoutAggregates(t *testing.T) {
	// GROUP BY alone acts as DISTINCT over the group columns.
	p := New(shipdb.Catalog())
	rel, _, err := p.Run(`SELECT Type FROM CLASS GROUP BY Type`)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 2 {
		t.Errorf("rows = %d:\n%s", rel.Len(), rel)
	}
}
