// The mutation executor: INSERT, DELETE, and UPDATE against a catalog.
// Statements execute copy-on-write — the target relation is deep-cloned,
// the clone is mutated and Put back, and nothing is published until the
// statement has fully succeeded. Snapshots holding the previous catalog
// therefore never observe a partial mutation, which is what lets the
// core layer run the write path alongside lock-free readers.

package query

import (
	"fmt"
	"strings"

	"intensional/internal/relation"
	"intensional/internal/sqlparse"
	"intensional/internal/storage"
)

// Mutation is the net effect of one executed DML statement: the tuples
// added and removed, in relation row order. An UPDATE reports each
// changed row twice — its old image under Deleted and its new image
// under Inserted. The tuple slices alias relation storage and must be
// treated as read-only.
type Mutation struct {
	Kind     string // "insert", "delete", or "update"
	Table    string // the relation's declared name
	Schema   *relation.Schema
	Inserted []relation.Tuple
	Deleted  []relation.Tuple
}

// Count returns how many tuples the statement touched: rows added plus
// rows removed for INSERT/DELETE, rows changed for UPDATE.
func (m *Mutation) Count() int {
	if m.Kind == "update" {
		return len(m.Inserted)
	}
	return len(m.Inserted) + len(m.Deleted)
}

// ApplyMutation executes one DML statement against the catalog. The
// mutated relation is replaced wholesale (deep clone, mutate, Put), so
// the caller may pass a storage.Catalog.ShallowClone and publish it only
// after every statement of a batch has succeeded. A failed statement
// leaves the catalog exactly as it was.
func ApplyMutation(cat *storage.Catalog, st sqlparse.Stmt) (*Mutation, error) {
	switch st := st.(type) {
	case *sqlparse.Insert:
		return applyInsert(cat, st)
	case *sqlparse.Delete:
		return applyDelete(cat, st)
	case *sqlparse.Update:
		return applyUpdate(cat, st)
	default:
		return nil, fmt.Errorf("query: %s is not a mutation statement", st.Kind())
	}
}

func applyInsert(cat *storage.Catalog, st *sqlparse.Insert) (*Mutation, error) {
	rel, err := cat.Get(st.Table)
	if err != nil {
		return nil, err
	}
	clone := rel.Clone()
	schema := clone.Schema()
	m := &Mutation{Kind: "insert", Table: clone.Name(), Schema: schema}

	// Map the column list (when present) to schema positions once;
	// unmentioned columns receive NULL.
	var idx []int
	if st.Columns != nil {
		seen := make(map[int]bool)
		for _, name := range st.Columns {
			ci, ok := schema.Index(name)
			if !ok {
				return nil, fmt.Errorf("query: table %s has no column %q", clone.Name(), name)
			}
			if seen[ci] {
				return nil, fmt.Errorf("query: column %q listed twice", name)
			}
			seen[ci] = true
			idx = append(idx, ci)
		}
	}

	var inserted []relation.Tuple
	for _, row := range st.Rows {
		t := make(relation.Tuple, schema.Len())
		if st.Columns == nil {
			if len(row) != schema.Len() {
				return nil, fmt.Errorf("query: table %s has %d columns, VALUES row has %d",
					clone.Name(), schema.Len(), len(row))
			}
			for i, l := range row {
				t[i] = l.Val
			}
		} else {
			for i := range t {
				t[i] = relation.Null()
			}
			for j, l := range row {
				t[idx[j]] = l.Val
			}
		}
		if err := clone.Insert(t); err != nil {
			return nil, err
		}
		inserted = append(inserted, t)
	}
	m.Inserted = inserted
	cat.Put(clone)
	return m, nil
}

func applyDelete(cat *storage.Catalog, st *sqlparse.Delete) (*Mutation, error) {
	rel, err := cat.Get(st.Table)
	if err != nil {
		return nil, err
	}
	clone := rel.Clone()
	m := &Mutation{Kind: "delete", Table: clone.Name(), Schema: clone.Schema()}

	pred := func(relation.Tuple) bool { return true }
	if st.Where != nil {
		pred, err = compilePred(clone.Schema(), clone.Name(), st.Where)
		if err != nil {
			return nil, err
		}
	}
	var deleted []relation.Tuple
	for _, t := range clone.Rows() {
		if pred(t) {
			deleted = append(deleted, t.Clone())
		}
	}
	m.Deleted = deleted
	clone.Delete(pred)
	cat.Put(clone)
	return m, nil
}

func applyUpdate(cat *storage.Catalog, st *sqlparse.Update) (*Mutation, error) {
	rel, err := cat.Get(st.Table)
	if err != nil {
		return nil, err
	}
	clone := rel.Clone()
	schema := clone.Schema()
	m := &Mutation{Kind: "update", Table: clone.Name(), Schema: schema}

	// Resolve and type-check every assignment before touching a row, so
	// a bad SET list cannot leave the clone half-updated.
	type binding struct {
		col int
		val relation.Value
	}
	assigns := make([]binding, len(st.Set))
	seen := make(map[int]bool)
	for i, a := range st.Set {
		ci, ok := schema.Index(a.Column)
		if !ok {
			return nil, fmt.Errorf("query: table %s has no column %q", clone.Name(), a.Column)
		}
		if seen[ci] {
			return nil, fmt.Errorf("query: column %q assigned twice", a.Column)
		}
		seen[ci] = true
		if !a.Val.Val.Conforms(schema.Col(ci).Type) {
			return nil, fmt.Errorf("query: value %s does not conform to column %s %s",
				a.Val.Val.GoString(), schema.Col(ci).Name, schema.Col(ci).Type)
		}
		assigns[i] = binding{col: ci, val: a.Val.Val}
	}

	pred := func(relation.Tuple) bool { return true }
	if st.Where != nil {
		pred, err = compilePred(schema, clone.Name(), st.Where)
		if err != nil {
			return nil, err
		}
	}
	var inserted, deleted []relation.Tuple
	for i := 0; i < clone.Len(); i++ {
		if !pred(clone.Row(i)) {
			continue
		}
		old := clone.Row(i)
		for _, a := range assigns {
			if err := clone.Set(i, a.col, a.val); err != nil {
				return nil, err
			}
		}
		deleted = append(deleted, old)
		inserted = append(inserted, clone.Row(i))
	}
	m.Inserted, m.Deleted = inserted, deleted
	cat.Put(clone)
	return m, nil
}

// compilePred lowers a single-table WHERE expression onto a relation
// predicate. Column references may be unqualified or qualified with the
// statement's table name; comparisons against NULL are never satisfied,
// matching the executor's comparison semantics.
func compilePred(schema *relation.Schema, table string, e sqlparse.Expr) (relation.Predicate, error) {
	switch e := e.(type) {
	case *sqlparse.Compare:
		return compileCompare(schema, table, e)
	case *sqlparse.And:
		preds := make([]relation.Predicate, len(e.Terms))
		for i, t := range e.Terms {
			p, err := compilePred(schema, table, t)
			if err != nil {
				return nil, err
			}
			preds[i] = p
		}
		return relation.And(preds...), nil
	case *sqlparse.Or:
		preds := make([]relation.Predicate, len(e.Terms))
		for i, t := range e.Terms {
			p, err := compilePred(schema, table, t)
			if err != nil {
				return nil, err
			}
			preds[i] = p
		}
		return relation.Or(preds...), nil
	case *sqlparse.Not:
		p, err := compilePred(schema, table, e.Term)
		if err != nil {
			return nil, err
		}
		return relation.Not(p), nil
	default:
		return nil, fmt.Errorf("query: unsupported expression %T", e)
	}
}

func compileCompare(schema *relation.Schema, table string, cmp *sqlparse.Compare) (relation.Predicate, error) {
	resolveCol := func(c sqlparse.Col) (int, error) {
		if c.Table != "" && !strings.EqualFold(c.Table, table) {
			return 0, fmt.Errorf("query: unknown table %q in single-table mutation over %s", c.Table, table)
		}
		ci, ok := schema.Index(c.Column)
		if !ok {
			return 0, fmt.Errorf("query: table %s has no column %q", table, c.Column)
		}
		return ci, nil
	}
	lc, lIsCol := cmp.L.(sqlparse.Col)
	rc, rIsCol := cmp.R.(sqlparse.Col)
	ll, lIsLit := cmp.L.(sqlparse.Lit)
	rl, rIsLit := cmp.R.(sqlparse.Lit)
	switch {
	case lIsCol && rIsLit:
		ci, err := resolveCol(lc)
		if err != nil {
			return nil, err
		}
		return relation.Cmp(schema, schema.Col(ci).Name, cmp.Op, rl.Val)
	case rIsCol && lIsLit:
		ci, err := resolveCol(rc)
		if err != nil {
			return nil, err
		}
		return relation.Cmp(schema, schema.Col(ci).Name, relation.FlipOp(cmp.Op), ll.Val)
	case lIsCol && rIsCol:
		li, err := resolveCol(lc)
		if err != nil {
			return nil, err
		}
		ri, err := resolveCol(rc)
		if err != nil {
			return nil, err
		}
		op := cmp.Op
		return func(t relation.Tuple) bool {
			c, err := t[li].Compare(t[ri])
			if err != nil {
				return false
			}
			switch op {
			case "=":
				return c == 0
			case "!=", "<>":
				return c != 0
			case "<":
				return c < 0
			case "<=":
				return c <= 0
			case ">":
				return c > 0
			case ">=":
				return c >= 0
			}
			return false
		}, nil
	case lIsLit && rIsLit:
		c, err := ll.Val.Compare(rl.Val)
		hold := false
		if err == nil {
			switch cmp.Op {
			case "=":
				hold = c == 0
			case "!=", "<>":
				hold = c != 0
			case "<":
				hold = c < 0
			case "<=":
				hold = c <= 0
			case ">":
				hold = c > 0
			case ">=":
				hold = c >= 0
			}
		}
		return func(relation.Tuple) bool { return hold }, nil
	default:
		return nil, fmt.Errorf("query: unsupported comparison %s", cmp)
	}
}
