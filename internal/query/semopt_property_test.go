package query_test

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"intensional/internal/dict"
	"intensional/internal/query"
	"intensional/internal/relation"
	"intensional/internal/rules"
	"intensional/internal/semopt"
	"intensional/internal/storage"
)

// propCatalog builds one or two small random relations over int columns
// K and V with values in [0, 20].
func propCatalog(rr *rand.Rand, twoRels bool) *storage.Catalog {
	cat := storage.NewCatalog()
	names := []string{"R"}
	if twoRels {
		names = append(names, "S")
	}
	for _, name := range names {
		s := relation.MustSchema(
			relation.Column{Name: "K", Type: relation.TInt},
			relation.Column{Name: "V", Type: relation.TInt},
		)
		r := relation.New(name, s)
		for j := rr.Intn(60); j > 0; j-- {
			r.MustInsert(
				relation.Int(int64(rr.Intn(21))),
				relation.Int(int64(rr.Intn(21))),
			)
		}
		cat.Put(r)
	}
	return cat
}

// consistentRandomRules derives a seeded random rule base that is
// consistent with the data by construction: each rule's premise is a
// random interval on one attribute, its consequence the observed value
// range of another attribute over the premise-matching rows. A premise
// no row matches gets an arbitrary consequence — vacuously consistent,
// and exactly the shape that lets inference prove emptiness.
func consistentRandomRules(rr *rand.Rand, cat *storage.Catalog) *rules.Set {
	set := rules.NewSet()
	for _, name := range cat.Names() {
		rel, err := cat.Get(name)
		if err != nil {
			continue
		}
		cols := []string{"K", "V"}
		for i := 0; i < 3+rr.Intn(3); i++ {
			x := cols[rr.Intn(2)]
			y := cols[0]
			if x == y {
				y = cols[1]
			}
			a, b := int64(rr.Intn(21)), int64(rr.Intn(21))
			if a > b {
				a, b = b, a
			}
			xi, _ := rel.Schema().Index(x)
			yi, _ := rel.Schema().Index(y)
			lo, hi := relation.Null(), relation.Null()
			for _, row := range rel.Rows() {
				k := row[xi].Int64()
				if k < a || k > b {
					continue
				}
				v := row[yi]
				if lo.IsNull() || v.Less(lo) {
					lo = v
				}
				if hi.IsNull() || hi.Less(v) {
					hi = v
				}
			}
			if lo.IsNull() {
				// Vacuous premise: any consequence is consistent.
				lo = relation.Int(int64(rr.Intn(21)))
				hi = lo
			}
			set.Add(&rules.Rule{
				LHS:     []rules.Clause{rules.RangeClause(rules.Attr(name, x), relation.Int(a), relation.Int(b))},
				RHS:     rules.RangeClause(rules.Attr(name, y), lo, hi),
				Support: 1,
			})
		}
	}
	return set
}

// randomConjunctiveSQL builds a random conjunctive SELECT. Constants
// range over [-5, 25] so restrictions fall inside and outside the
// active domain, exercising Empty proofs.
func randomConjunctiveSQL(rr *rand.Rand, join bool) string {
	ops := []string{"=", "!=", "<", "<=", ">", ">="}
	conj := func(table string) string {
		col := []string{"K", "V"}[rr.Intn(2)]
		return fmt.Sprintf("%s.%s %s %d", table, col, ops[rr.Intn(len(ops))], rr.Intn(31)-5)
	}
	var terms []string
	if join {
		terms = append(terms, "R.K = S.K")
		for i := rr.Intn(3); i > 0; i-- {
			terms = append(terms, conj([]string{"R", "S"}[rr.Intn(2)]))
		}
		sql := "SELECT R.K, R.V, S.V FROM R, S"
		return sql + " WHERE " + strings.Join(terms, " AND ")
	}
	for i := 1 + rr.Intn(3); i > 0; i-- {
		terms = append(terms, conj("R"))
	}
	return "SELECT R.K, R.V FROM R WHERE " + strings.Join(terms, " AND ")
}

// rowKeys renders a relation's rows in result order.
func rowKeys(r *relation.Relation) []string {
	out := make([]string, 0, r.Len())
	for _, row := range r.Rows() {
		var b strings.Builder
		for _, v := range row {
			b.WriteString(v.Key())
			b.WriteByte('|')
		}
		out = append(out, b.String())
	}
	return out
}

// TestSemoptRewrittenPlansMatchBaseline: under seeded random data,
// seeded random (data-consistent) rule bases, and random conjunctive
// queries, the semantically rewritten plan must return byte-identical
// results to the unrewritten plan, and an Empty verdict must never
// contradict the ground truth.
func TestSemoptRewrittenPlansMatchBaseline(t *testing.T) {
	prop := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		join := rr.Intn(3) == 0
		cat := propCatalog(rr, join)
		d := dict.New(cat)
		d.SetRules(consistentRandomRules(rr, cat))
		sql := randomConjunctiveSQL(rr, join)

		proc := query.New(cat)
		baseline, err := proc.Prepare(sql, nil)
		if err != nil {
			t.Logf("seed %d: baseline prepare %q: %v", seed, sql, err)
			return false
		}
		baseRel, err := baseline.Run()
		if err != nil {
			t.Logf("seed %d: baseline run %q: %v", seed, sql, err)
			return false
		}

		rewriter := func(an *query.Analysis) (*query.Rewrites, error) {
			rep, err := semopt.Analyze(an, d)
			if err != nil {
				return nil, err
			}
			return &query.Rewrites{
				Empty:     rep.Empty,
				Because:   rep.Because,
				Implied:   rep.Implied,
				Redundant: rep.Redundant,
			}, nil
		}
		rewritten, err := proc.Prepare(sql, rewriter)
		if err != nil {
			t.Logf("seed %d: rewritten prepare %q: %v", seed, sql, err)
			return false
		}
		rwRel, err := rewritten.Run()
		if err != nil {
			t.Logf("seed %d: rewritten run %q: %v", seed, sql, err)
			return false
		}

		got, want := rowKeys(rwRel), rowKeys(baseRel)
		if len(got) != len(want) {
			t.Logf("seed %d: %q rewritten %d rows, baseline %d\nplan:\n%s",
				seed, sql, len(got), len(want), rewritten.Describe())
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				t.Logf("seed %d: %q row %d differs: %q vs %q", seed, sql, i, got[i], want[i])
				return false
			}
		}

		// An Empty verdict must agree with ground truth.
		if rewritten.Describe().Root.Kind() == "Empty" && baseRel.Len() != 0 {
			t.Logf("seed %d: %q proved empty but baseline has %d rows", seed, sql, baseRel.Len())
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
