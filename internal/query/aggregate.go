package query

import (
	"context"
	"fmt"
	"strings"

	"intensional/internal/exec"
	"intensional/internal/plan"
	"intensional/internal/quel"
	"intensional/internal/relation"
	"intensional/internal/sqlparse"
)

// aggPlan is a prepared aggregate/GROUP BY SELECT: the paper's
// introduction motivates summarised answers alongside intensional ones,
// and grouped aggregates are the classic summarised form. The base rows
// are produced by a prepared QUEL retrieve (or, when the semantic
// optimizer proved the input empty, by no retrieve at all); grouping and
// accumulation happen in run.
type aggPlan struct {
	sel *sqlparse.Select
	// rp produces the base rows; nil when the input is provably empty,
	// in which case baseSchema alone types the (empty) base.
	rp          *quel.RetrievePlan
	baseSchema  *relation.Schema
	outSchema   *relation.Schema
	emptyReason string
	groupPos    []int // base positions of the GROUP BY columns
	argPos      []int // per item: base position of the aggregate argument; -1 for COUNT(*) or plain
	itemGroup   []int // per plain item: base position of its group column

	// Lowered streaming form, built once at prepare time: the aggregate
	// item specs and the plan node the Aggregate operator executes
	// (node.Input is the base input's node, reused for the proven-empty
	// source).
	items []exec.AggItem
	node  *plan.Aggregate
}

// prepareAggregate validates the aggregate query, plans the base
// retrieve (unless emptyReason marks the input provably empty), and
// fixes both base and output schemas. The where expression is the
// already-rewritten qualification.
func (p *Processor) prepareAggregate(b *binder, sel *sqlparse.Select, where quel.Expr, emptyReason string) (*aggPlan, error) {
	if sel.Star {
		return nil, fmt.Errorf("query: SELECT * cannot be combined with aggregates")
	}
	if sel.Distinct {
		return nil, fmt.Errorf("query: SELECT DISTINCT cannot be combined with aggregates")
	}

	// Every plain select item must appear in GROUP BY.
	groupKey := map[string]bool{}
	type colRef struct {
		binding, col string
	}
	var groupCols []colRef
	for _, g := range sel.GroupBy {
		binding, col, _, err := b.resolve(g.Table, g.Column)
		if err != nil {
			return nil, err
		}
		groupCols = append(groupCols, colRef{binding, col})
		groupKey[strings.ToLower(binding+"."+col)] = true
	}
	for _, it := range sel.Items {
		if it.Agg != "" {
			continue
		}
		binding, col, _, err := b.resolve(it.Col.Table, it.Col.Column)
		if err != nil {
			return nil, err
		}
		if !groupKey[strings.ToLower(binding+"."+col)] {
			return nil, fmt.Errorf("query: column %s must appear in GROUP BY", it.Col)
		}
	}

	// Base retrieve: group columns first, then aggregate arguments.
	st := &quel.RetrieveStmt{}
	baseCols := 0
	addTarget := func(binding, col string) int {
		st.Target = append(st.Target, quel.Target{
			As:  fmt.Sprintf("c%d", baseCols),
			Col: quel.ColRef{Var: binding, Attr: col},
		})
		baseCols++
		return baseCols - 1
	}
	ap := &aggPlan{sel: sel, emptyReason: emptyReason}
	ap.groupPos = make([]int, len(groupCols))
	for i, g := range groupCols {
		ap.groupPos[i] = addTarget(g.binding, g.col)
	}
	ap.argPos = make([]int, len(sel.Items))
	ap.itemGroup = make([]int, len(sel.Items))
	for i, it := range sel.Items {
		ap.argPos[i] = -1
		if it.Agg == "" {
			binding, col, _, err := b.resolve(it.Col.Table, it.Col.Column)
			if err != nil {
				return nil, err
			}
			for gi, g := range groupCols {
				if strings.EqualFold(g.binding, binding) && strings.EqualFold(g.col, col) {
					ap.itemGroup[i] = ap.groupPos[gi]
				}
			}
			continue
		}
		if it.Star {
			continue
		}
		binding, col, _, err := b.resolve(it.Col.Table, it.Col.Column)
		if err != nil {
			return nil, err
		}
		ap.argPos[i] = addTarget(binding, col)
	}
	if baseCols == 0 {
		// COUNT(*) alone with no GROUP BY: fetch any column to count rows.
		name := b.bindings[0]
		schema := b.schemas[strings.ToLower(name)]
		addTarget(name, schema.Col(0).Name)
	}
	st.Where = where

	sess, err := p.session(b)
	if err != nil {
		return nil, err
	}
	if emptyReason != "" {
		ap.baseSchema, err = sess.RetrieveSchema(st)
		if err != nil {
			return nil, err
		}
	} else {
		ap.rp, err = sess.PlanRetrieve(st)
		if err != nil {
			return nil, err
		}
		ap.baseSchema = ap.rp.Schema()
	}

	// Output schema.
	cols := make([]relation.Column, len(sel.Items))
	for i, it := range sel.Items {
		t := relation.TInt // COUNT
		switch {
		case it.Agg == "":
			// type of the underlying group column
			t = ap.baseSchema.Col(ap.itemGroup[i]).Type
		case it.Agg == "AVG":
			t = relation.TFloat
		case it.Agg == "SUM", it.Agg == "MIN", it.Agg == "MAX":
			if !it.Star {
				t = ap.baseSchema.Col(ap.argPos[i]).Type
			}
		}
		cols[i] = relation.Column{Name: it.Label(), Type: t}
	}
	ap.outSchema, err = relation.NewSchema(cols...)
	if err != nil {
		return nil, err
	}

	// Lower the items to streaming aggregate specs and fix the plan node
	// the Aggregate operator will execute.
	ap.items = make([]exec.AggItem, len(sel.Items))
	for i, it := range sel.Items {
		switch it.Agg {
		case "":
			ap.items[i] = exec.AggItem{Kind: exec.AggGroup, Arg: ap.itemGroup[i]}
		case "COUNT":
			ap.items[i] = exec.AggItem{Kind: exec.AggCount, Arg: ap.argPos[i]}
		case "SUM":
			ap.items[i] = exec.AggItem{Kind: exec.AggSum, Arg: ap.argPos[i]}
		case "AVG":
			ap.items[i] = exec.AggItem{Kind: exec.AggAvg, Arg: ap.argPos[i]}
		case "MIN":
			ap.items[i] = exec.AggItem{Kind: exec.AggMin, Arg: ap.argPos[i]}
		case "MAX":
			ap.items[i] = exec.AggItem{Kind: exec.AggMax, Arg: ap.argPos[i]}
		default:
			return nil, fmt.Errorf("query: unsupported aggregate %q", it.Agg)
		}
	}
	var input plan.Node
	if ap.rp == nil {
		input = &plan.Empty{Reason: emptyReason, Cols: planColumns(ap.baseSchema)}
	} else {
		input = ap.rp.Describe()
	}
	items := make([]string, len(sel.Items))
	for i, it := range sel.Items {
		items[i] = it.Label()
	}
	var groupBy []string
	for _, g := range sel.GroupBy {
		groupBy = append(groupBy, g.String())
	}
	est := 1
	if len(groupBy) > 0 {
		est = input.EstRows()
	}
	ap.node = &plan.Aggregate{
		Items:   items,
		GroupBy: groupBy,
		Est:     est,
		Cols:    planColumns(ap.outSchema),
		Input:   input,
	}
	return ap, nil
}

// describe renders the aggregate plan tree — the node object the
// streaming Aggregate operator executes.
func (ap *aggPlan) describe() plan.Node { return ap.node }

// runContext executes the prepared aggregate through the streaming
// pipeline: the base retrieve streams into an Aggregate operator, which
// materializes only the per-group accumulators.
func (ap *aggPlan) runContext(ctx context.Context) (*relation.Relation, error) {
	var src exec.Operator
	if ap.rp == nil {
		src = exec.NewEmpty(ap.node.Input, ap.baseSchema)
	} else {
		src = ap.rp.Stream()
	}
	agg := exec.NewAggregate(ap.node, ap.outSchema, ap.groupPos, ap.items, src)
	rows, err := exec.Collect(ctx, agg, ap.node.Est)
	if err != nil {
		return nil, err
	}
	out := relation.FromRows("result", ap.outSchema, rows)
	return ap.orderBy(out)
}

// orderBy applies the statement's ORDER BY over the (small, grouped)
// output columns by label.
func (ap *aggPlan) orderBy(out *relation.Relation) (*relation.Relation, error) {
	sel := ap.sel
	if len(sel.OrderBy) == 0 {
		return out, nil
	}
	keys := make([]relation.SortKey, len(sel.OrderBy))
	for i, o := range sel.OrderBy {
		name := o.Col.Column
		if _, ok := out.Schema().Index(name); !ok {
			return nil, fmt.Errorf("query: ORDER BY %s: not an output column of the grouped query", name)
		}
		keys[i] = relation.SortKey{Column: name, Desc: o.Desc}
	}
	return out.Sort(keys...)
}

// runMaterialized executes the prepared aggregate over the legacy
// materializing retrieve: fetch all base rows, group, accumulate, and
// order. Retained as the reference implementation the streaming path is
// differentially tested against.
func (ap *aggPlan) runMaterialized() (*relation.Relation, error) {
	sel := ap.sel
	var base *relation.Relation
	if ap.rp == nil {
		base = relation.New("base", ap.baseSchema)
	} else {
		res, err := ap.rp.RunMaterialized()
		if err != nil {
			return nil, err
		}
		base = res.Rel
	}

	// Group and accumulate.
	type acc struct {
		key      []relation.Value // group column values
		count    []int64          // per item
		sumI     []int64
		sumF     []float64
		isFloat  []bool
		min, max []relation.Value
		rows     int64
	}
	newAcc := func(key []relation.Value) *acc {
		n := len(sel.Items)
		return &acc{
			key:   key,
			count: make([]int64, n), sumI: make([]int64, n), sumF: make([]float64, n),
			isFloat: make([]bool, n),
			min:     make([]relation.Value, n), max: make([]relation.Value, n),
		}
	}
	groups := map[string]*acc{}
	var order []string
	for _, row := range base.Rows() {
		var kb strings.Builder
		key := make([]relation.Value, len(ap.groupPos))
		for i, gp := range ap.groupPos {
			key[i] = row[gp]
			kb.WriteString(row[gp].Key())
			kb.WriteByte('\x1f')
		}
		k := kb.String()
		g, ok := groups[k]
		if !ok {
			g = newAcc(key)
			groups[k] = g
			order = append(order, k)
		}
		g.rows++
		for i, it := range sel.Items {
			if it.Agg == "" {
				continue
			}
			if it.Star {
				g.count[i]++
				continue
			}
			v := row[ap.argPos[i]]
			if v.IsNull() {
				continue
			}
			g.count[i]++
			switch v.Kind() {
			case relation.KindInt:
				g.sumI[i] += v.Int64()
				g.sumF[i] += v.Float64()
			case relation.KindFloat:
				g.isFloat[i] = true
				g.sumF[i] += v.Float64()
			}
			if g.min[i].IsNull() || v.Less(g.min[i]) {
				g.min[i] = v
			}
			if g.max[i].IsNull() || g.max[i].Less(v) {
				g.max[i] = v
			}
		}
	}
	// Aggregates with no GROUP BY produce exactly one row, even when the
	// input is empty.
	if len(sel.GroupBy) == 0 && len(groups) == 0 {
		groups[""] = newAcc(nil)
		order = append(order, "")
	}

	out := relation.New("result", ap.outSchema)
	for _, k := range order {
		g := groups[k]
		row := make(relation.Tuple, len(sel.Items))
		for i, it := range sel.Items {
			switch {
			case it.Agg == "":
				// Find the group column index matching this item.
				for gi, gp := range ap.groupPos {
					if gp == ap.itemGroup[i] {
						row[i] = g.key[gi]
					}
				}
			case it.Agg == "COUNT":
				row[i] = relation.Int(g.count[i])
			case it.Agg == "SUM":
				if g.count[i] == 0 {
					row[i] = relation.Null()
				} else if g.isFloat[i] {
					row[i] = relation.Float(g.sumF[i])
				} else {
					row[i] = relation.Int(g.sumI[i])
				}
			case it.Agg == "AVG":
				if g.count[i] == 0 {
					row[i] = relation.Null()
				} else {
					row[i] = relation.Float(g.sumF[i] / float64(g.count[i]))
				}
			case it.Agg == "MIN":
				row[i] = g.min[i]
			case it.Agg == "MAX":
				row[i] = g.max[i]
			}
		}
		if err := out.Insert(row); err != nil {
			return nil, err
		}
	}

	return ap.orderBy(out)
}
