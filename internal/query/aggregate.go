package query

import (
	"fmt"
	"strings"

	"intensional/internal/quel"
	"intensional/internal/relation"
	"intensional/internal/sqlparse"
)

// runAggregate executes a SELECT containing aggregates and/or GROUP BY:
// the paper's introduction motivates summarised answers alongside
// intensional ones, and grouped aggregates are the classic summarised
// form. The base rows are produced by the QUEL executor; grouping and
// accumulation happen here.
func (p *Processor) runAggregate(b *binder, sel *sqlparse.Select) (*relation.Relation, error) {
	if sel.Star {
		return nil, fmt.Errorf("query: SELECT * cannot be combined with aggregates")
	}
	if sel.Distinct {
		return nil, fmt.Errorf("query: SELECT DISTINCT cannot be combined with aggregates")
	}

	// Every plain select item must appear in GROUP BY.
	groupKey := map[string]bool{}
	type colRef struct {
		binding, col string
	}
	var groupCols []colRef
	for _, g := range sel.GroupBy {
		binding, col, _, err := b.resolve(g.Table, g.Column)
		if err != nil {
			return nil, err
		}
		groupCols = append(groupCols, colRef{binding, col})
		groupKey[strings.ToLower(binding+"."+col)] = true
	}
	for _, it := range sel.Items {
		if it.Agg != "" {
			continue
		}
		binding, col, _, err := b.resolve(it.Col.Table, it.Col.Column)
		if err != nil {
			return nil, err
		}
		if !groupKey[strings.ToLower(binding+"."+col)] {
			return nil, fmt.Errorf("query: column %s must appear in GROUP BY", it.Col)
		}
	}

	// Fetch the base rows: group columns first, then aggregate arguments.
	st := &quel.RetrieveStmt{}
	type argRef struct {
		pos int // column position in the base result; -1 for COUNT(*)
	}
	baseCols := 0
	addTarget := func(binding, col string) int {
		st.Target = append(st.Target, quel.Target{
			As:  fmt.Sprintf("c%d", baseCols),
			Col: quel.ColRef{Var: binding, Attr: col},
		})
		baseCols++
		return baseCols - 1
	}
	groupPos := make([]int, len(groupCols))
	for i, g := range groupCols {
		groupPos[i] = addTarget(g.binding, g.col)
	}
	args := make([]argRef, len(sel.Items))
	itemGroupPos := make([]int, len(sel.Items)) // for plain items: base position
	for i, it := range sel.Items {
		if it.Agg == "" {
			binding, col, _, err := b.resolve(it.Col.Table, it.Col.Column)
			if err != nil {
				return nil, err
			}
			for gi, g := range groupCols {
				if strings.EqualFold(g.binding, binding) && strings.EqualFold(g.col, col) {
					itemGroupPos[i] = groupPos[gi]
				}
			}
			continue
		}
		if it.Star {
			args[i] = argRef{pos: -1}
			continue
		}
		binding, col, _, err := b.resolve(it.Col.Table, it.Col.Column)
		if err != nil {
			return nil, err
		}
		args[i] = argRef{pos: addTarget(binding, col)}
	}
	if baseCols == 0 {
		// COUNT(*) alone with no GROUP BY: fetch any column to count rows.
		name := b.bindings[0]
		schema := b.schemas[strings.ToLower(name)]
		addTarget(name, schema.Col(0).Name)
	}
	if sel.Where != nil {
		e, err := lowerExpr(b, sel.Where)
		if err != nil {
			return nil, err
		}
		st.Where = e
	}
	sess := quel.NewSession(p.cat)
	for _, name := range b.bindings {
		if _, err := sess.ExecStmt(&quel.RangeStmt{Var: name, Rel: b.tables[strings.ToLower(name)]}); err != nil {
			return nil, err
		}
	}
	res, err := sess.ExecStmt(st)
	if err != nil {
		return nil, err
	}
	base := res.Rel

	// Group and accumulate.
	type acc struct {
		key      []relation.Value // group column values
		count    []int64          // per item
		sumI     []int64
		sumF     []float64
		isFloat  []bool
		min, max []relation.Value
		rows     int64
	}
	newAcc := func(key []relation.Value) *acc {
		n := len(sel.Items)
		return &acc{
			key:   key,
			count: make([]int64, n), sumI: make([]int64, n), sumF: make([]float64, n),
			isFloat: make([]bool, n),
			min:     make([]relation.Value, n), max: make([]relation.Value, n),
		}
	}
	groups := map[string]*acc{}
	var order []string
	for _, row := range base.Rows() {
		var kb strings.Builder
		key := make([]relation.Value, len(groupPos))
		for i, gp := range groupPos {
			key[i] = row[gp]
			kb.WriteString(row[gp].Key())
			kb.WriteByte('\x1f')
		}
		k := kb.String()
		g, ok := groups[k]
		if !ok {
			g = newAcc(key)
			groups[k] = g
			order = append(order, k)
		}
		g.rows++
		for i, it := range sel.Items {
			if it.Agg == "" {
				continue
			}
			if it.Star {
				g.count[i]++
				continue
			}
			v := row[args[i].pos]
			if v.IsNull() {
				continue
			}
			g.count[i]++
			switch v.Kind() {
			case relation.KindInt:
				g.sumI[i] += v.Int64()
				g.sumF[i] += v.Float64()
			case relation.KindFloat:
				g.isFloat[i] = true
				g.sumF[i] += v.Float64()
			}
			if g.min[i].IsNull() || v.Less(g.min[i]) {
				g.min[i] = v
			}
			if g.max[i].IsNull() || g.max[i].Less(v) {
				g.max[i] = v
			}
		}
	}
	// Aggregates with no GROUP BY produce exactly one row, even when the
	// input is empty.
	if len(sel.GroupBy) == 0 && len(groups) == 0 {
		groups[""] = newAcc(nil)
		order = append(order, "")
	}

	// Output schema.
	cols := make([]relation.Column, len(sel.Items))
	for i, it := range sel.Items {
		t := relation.TInt // COUNT
		switch {
		case it.Agg == "":
			// type of the underlying group column
			t = base.Schema().Col(itemGroupPos[i]).Type
		case it.Agg == "AVG":
			t = relation.TFloat
		case it.Agg == "SUM", it.Agg == "MIN", it.Agg == "MAX":
			if !it.Star {
				t = base.Schema().Col(args[i].pos).Type
			}
		}
		cols[i] = relation.Column{Name: it.Label(), Type: t}
	}
	schema, err := relation.NewSchema(cols...)
	if err != nil {
		return nil, err
	}
	out := relation.New("result", schema)
	for _, k := range order {
		g := groups[k]
		row := make(relation.Tuple, len(sel.Items))
		for i, it := range sel.Items {
			switch {
			case it.Agg == "":
				// Find the group column index matching this item.
				for gi, gp := range groupPos {
					if gp == itemGroupPos[i] {
						row[i] = g.key[gi]
					}
				}
			case it.Agg == "COUNT":
				row[i] = relation.Int(g.count[i])
			case it.Agg == "SUM":
				if g.count[i] == 0 {
					row[i] = relation.Null()
				} else if g.isFloat[i] {
					row[i] = relation.Float(g.sumF[i])
				} else {
					row[i] = relation.Int(g.sumI[i])
				}
			case it.Agg == "AVG":
				if g.count[i] == 0 {
					row[i] = relation.Null()
				} else {
					row[i] = relation.Float(g.sumF[i] / float64(g.count[i]))
				}
			case it.Agg == "MIN":
				row[i] = g.min[i]
			case it.Agg == "MAX":
				row[i] = g.max[i]
			}
		}
		if err := out.Insert(row); err != nil {
			return nil, err
		}
	}

	// ORDER BY over the output columns (by label).
	if len(sel.OrderBy) > 0 {
		keys := make([]relation.SortKey, len(sel.OrderBy))
		for i, o := range sel.OrderBy {
			name := o.Col.Column
			if _, ok := out.Schema().Index(name); !ok {
				return nil, fmt.Errorf("query: ORDER BY %s: not an output column of the grouped query", name)
			}
			keys[i] = relation.SortKey{Column: name, Desc: o.Desc}
		}
		sorted, err := out.Sort(keys...)
		if err != nil {
			return nil, err
		}
		out = sorted
	}
	return out, nil
}
