package query

import (
	"sort"
	"strings"
	"testing"

	"intensional/internal/relation"
	"intensional/internal/shipdb"
	"intensional/internal/storage"
)

// Example1SQL..Example3SQL are the paper's Section 6 queries.
const (
	Example1SQL = `
		SELECT SUBMARINE.ID, SUBMARINE.NAME, SUBMARINE.CLASS, CLASS.TYPE
		FROM SUBMARINE, CLASS
		WHERE SUBMARINE.CLASS = CLASS.CLASS
		AND CLASS.DISPLACEMENT > 8000`
	Example2SQL = `
		SELECT SUBMARINE.NAME, SUBMARINE.CLASS
		FROM SUBMARINE, CLASS
		WHERE SUBMARINE.CLASS = CLASS.CLASS
		AND CLASS.TYPE = "SSBN"`
	Example3SQL = `
		SELECT SUBMARINE.NAME, SUBMARINE.CLASS, CLASS.TYPE
		FROM SUBMARINE, CLASS, INSTALL
		WHERE SUBMARINE.CLASS = CLASS.CLASS
		AND SUBMARINE.ID = INSTALL.SHIP
		AND INSTALL.SONAR = "BQS-04"`
)

func rowsAsStrings(r *relation.Relation) []string {
	out := make([]string, r.Len())
	for i, t := range r.Rows() {
		parts := make([]string, len(t))
		for j, v := range t {
			parts[j] = v.String()
		}
		out[i] = strings.Join(parts, "|")
	}
	sort.Strings(out)
	return out
}

func expectRows(t *testing.T, got *relation.Relation, want []string) {
	t.Helper()
	sort.Strings(want)
	gotRows := rowsAsStrings(got)
	if len(gotRows) != len(want) {
		t.Fatalf("got %d rows, want %d:\n%s", len(gotRows), len(want), got)
	}
	for i := range want {
		if gotRows[i] != want[i] {
			t.Errorf("row %d = %q, want %q", i, gotRows[i], want[i])
		}
	}
}

// TestExample1Extensional reproduces the paper's Example 1 extensional
// answer exactly.
func TestExample1Extensional(t *testing.T) {
	p := New(shipdb.Catalog())
	rel, an, err := p.Run(Example1SQL)
	if err != nil {
		t.Fatal(err)
	}
	expectRows(t, rel, []string{
		"SSBN730|Rhode Island|0101|SSBN",
		"SSBN130|Typhoon|1301|SSBN",
	})
	if !an.Conjunctive {
		t.Error("Example 1 is conjunctive")
	}
	if len(an.Joins) != 1 || an.Joins[0].String() != "SUBMARINE.Class = CLASS.Class" {
		t.Errorf("joins = %v", an.Joins)
	}
	if len(an.Restrictions) != 1 {
		t.Fatalf("restrictions = %v", an.Restrictions)
	}
	r := an.Restrictions[0]
	if r.Attr.String() != "CLASS.Displacement" || r.Op != ">" || !r.Val.Equal(relation.Int(8000)) {
		t.Errorf("restriction = %+v", r)
	}
	if !r.HasInterval {
		t.Error("restriction should have an interval form")
	}
}

// TestExample2Extensional reproduces Example 2's seven SSBN ships.
func TestExample2Extensional(t *testing.T) {
	p := New(shipdb.Catalog())
	rel, an, err := p.Run(Example2SQL)
	if err != nil {
		t.Fatal(err)
	}
	expectRows(t, rel, []string{
		"Nathaniel Hale|0103",
		"Daniel Boone|0103",
		"Sam Rayburn|0103",
		"Lewis and Clark|0102",
		"Mariano G. Vallejo|0102",
		"Rhode Island|0101",
		"Typhoon|1301",
	})
	if len(an.Restrictions) != 1 || an.Restrictions[0].Op != "=" {
		t.Errorf("restrictions = %v", an.Restrictions)
	}
}

// TestExample3Extensional reproduces Example 3's four BQS-04 ships.
func TestExample3Extensional(t *testing.T) {
	p := New(shipdb.Catalog())
	rel, an, err := p.Run(Example3SQL)
	if err != nil {
		t.Fatal(err)
	}
	expectRows(t, rel, []string{
		"Bonefish|0215|SSN",
		"Seadragon|0212|SSN",
		"Snook|0209|SSN",
		"Robert E. Lee|0208|SSN",
	})
	if len(an.Joins) != 2 {
		t.Errorf("joins = %v", an.Joins)
	}
	if len(an.Tables) != 3 {
		t.Errorf("tables = %v", an.Tables)
	}
}

func TestSelectStarAndDistinct(t *testing.T) {
	p := New(shipdb.Catalog())
	rel, _, err := p.Run("SELECT * FROM TYPE")
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 2 || rel.Schema().Len() != 2 {
		t.Errorf("SELECT * FROM TYPE: %d rows, %d cols", rel.Len(), rel.Schema().Len())
	}
	rel, _, err = p.Run("SELECT DISTINCT TYPE FROM CLASS")
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 2 {
		t.Errorf("DISTINCT gave %d rows", rel.Len())
	}
}

func TestOrderBy(t *testing.T) {
	p := New(shipdb.Catalog())
	rel, _, err := p.Run("SELECT Class, Displacement FROM CLASS ORDER BY Displacement DESC")
	if err != nil {
		t.Fatal(err)
	}
	if rel.Row(0)[0].Str() != "1301" {
		t.Errorf("first row %v, want class 1301 (30000 tons)", rel.Row(0))
	}
	rel, _, err = p.Run("SELECT Class FROM CLASS ORDER BY Class ASC")
	if err != nil {
		t.Fatal(err)
	}
	if rel.Row(0)[0].Str() != "0101" {
		t.Errorf("first row %v, want 0101", rel.Row(0))
	}
}

func TestAliasesAndUnqualified(t *testing.T) {
	p := New(shipdb.Catalog())
	rel, an, err := p.Run(`SELECT s.Name, c.Type FROM SUBMARINE s, CLASS c
		WHERE s.Class = c.Class AND Displacement > 8000`)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 2 {
		t.Errorf("aliased query: %d rows", rel.Len())
	}
	// Analysis must resolve aliases back to real relation names.
	if an.Restrictions[0].Attr.Relation != "CLASS" {
		t.Errorf("restriction relation = %q", an.Restrictions[0].Attr.Relation)
	}
	if an.Joins[0].L.Relation != "SUBMARINE" {
		t.Errorf("join left relation = %q", an.Joins[0].L.Relation)
	}
}

func TestColumnAlias(t *testing.T) {
	p := New(shipdb.Catalog())
	rel, _, err := p.Run("SELECT Class AS ShipClass FROM CLASS")
	if err != nil {
		t.Fatal(err)
	}
	if rel.Schema().Names()[0] != "ShipClass" {
		t.Errorf("aliased column = %v", rel.Schema().Names())
	}
}

func TestAmbiguousAndUnknownColumns(t *testing.T) {
	p := New(shipdb.Catalog())
	if _, _, err := p.Run("SELECT Class FROM SUBMARINE, CLASS WHERE SUBMARINE.Class = CLASS.Class"); err == nil {
		t.Error("ambiguous unqualified column should error")
	}
	if _, _, err := p.Run("SELECT Nope FROM CLASS"); err == nil {
		t.Error("unknown column should error")
	}
	if _, _, err := p.Run("SELECT X.Class FROM CLASS"); err == nil {
		t.Error("unknown table qualifier should error")
	}
	if _, _, err := p.Run("SELECT Class FROM NOPE"); err == nil {
		t.Error("unknown table should error")
	}
	if _, _, err := p.Run("SELECT Class FROM CLASS, CLASS"); err == nil {
		t.Error("duplicate binding should error")
	}
}

func TestNonConjunctiveAnalysis(t *testing.T) {
	p := New(shipdb.Catalog())
	_, an, err := p.Run(`SELECT Class FROM CLASS WHERE Type = "SSBN" OR Displacement > 8000`)
	if err != nil {
		t.Fatal(err)
	}
	if an.Conjunctive {
		t.Error("disjunctive WHERE must be flagged non-conjunctive")
	}
}

func TestFlippedLiteralComparison(t *testing.T) {
	p := New(shipdb.Catalog())
	rel, an, err := p.Run("SELECT Class FROM CLASS WHERE 8000 < Displacement")
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 2 {
		t.Errorf("flipped comparison: %d rows", rel.Len())
	}
	if an.Restrictions[0].Op != ">" {
		t.Errorf("flipped op = %q, want >", an.Restrictions[0].Op)
	}
}

func TestNotEqualRestrictionHasNoInterval(t *testing.T) {
	p := New(shipdb.Catalog())
	_, an, err := p.Run(`SELECT Class FROM CLASS WHERE Type != "SSN"`)
	if err != nil {
		t.Fatal(err)
	}
	if len(an.Restrictions) != 1 || an.Restrictions[0].HasInterval {
		t.Errorf("!= restriction should have no interval: %+v", an.Restrictions)
	}
	if !an.Conjunctive {
		t.Error("a != conjunct is still conjunctive")
	}
}

func TestEmptyCatalogProcessor(t *testing.T) {
	p := New(storage.NewCatalog())
	if _, _, err := p.Run("SELECT a FROM b"); err == nil {
		t.Error("query on empty catalog should error")
	}
	if _, _, err := p.Run("garbage"); err == nil {
		t.Error("unparseable query should error")
	}
}
