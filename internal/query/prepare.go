package query

import (
	"context"
	"fmt"
	"strings"

	"intensional/internal/plan"
	"intensional/internal/quel"
	"intensional/internal/relation"
	"intensional/internal/sqlparse"
)

// Rewrites carries the semantic-optimizer decisions Prepare applies to a
// query: the paper's [CHU90]/[KING81] technique turned from advice into
// plan transformations.
type Rewrites struct {
	// Empty reports the answer is provably empty under the serving rules
	// and active domains; Because names the restrictions that prove it.
	Empty   bool
	Because []Restriction
	// Implied lists restrictions every answer tuple provably satisfies;
	// Prepare pushes them down as extra conjuncts, where the cost-based
	// planner prefers whichever is cheapest to serve from an index.
	Implied []Restriction
	// Redundant indexes into Analysis.Restrictions whose condition is
	// implied by another restriction; their conjuncts are dropped from
	// the filter.
	Redundant []int
}

// Rewriter derives semantic rewrites from a query's analysis. The core
// engine supplies one backed by semopt.Analyze — this package cannot
// import semopt directly, because semopt consumes this package's
// Analysis.
type Rewriter func(*Analysis) (*Rewrites, error)

// Prepared is a planned SELECT: parsed, analysed, semantically
// rewritten, and lowered to an executable plan. Run may be called any
// number of times against the catalog snapshot the statement was
// prepared on; callers caching Prepared values must key them by
// snapshot version.
type Prepared struct {
	// SQL is the statement text the caller prepared (normalized form is
	// the caller's concern; it is echoed into the plan).
	SQL string
	// Analysis is the pristine structural summary — rewrites change the
	// executed filter, never the analysis the inference processor sees.
	Analysis *Analysis

	rewrites    []plan.Rewrite
	emptyReason string

	// Exactly one execution path is set:
	empty *relation.Schema    // proven-empty SELECT: schema only, no scan
	rp    *quel.RetrievePlan  // plain SELECT
	agg   *aggPlan            // aggregate / GROUP BY SELECT
}

// Prepare parses, analyses, optionally rewrites, and plans a SELECT.
func (p *Processor) Prepare(sql string, rw Rewriter) (*Prepared, error) {
	sel, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, err
	}
	return p.PrepareSelect(sql, sel, rw)
}

// PrepareSelect plans an already-parsed SELECT. A nil Rewriter prepares
// the query as written.
func (p *Processor) PrepareSelect(sql string, sel *sqlparse.Select, rewriter Rewriter) (*Prepared, error) {
	b, err := newBinder(p.cat, sel.From)
	if err != nil {
		return nil, err
	}
	an, err := analyse(b, sel)
	if err != nil {
		return nil, err
	}
	prep := &Prepared{SQL: sql, Analysis: an}

	// Rewrites apply only to conjunctive queries — the paper's setting,
	// and the only shape whose restriction indices line up with WHERE
	// conjuncts.
	var rw *Rewrites
	if rewriter != nil && an.Conjunctive {
		rw, err = rewriter(an)
		if err != nil {
			return nil, err
		}
	}
	isAgg := sel.HasAggregates() || len(sel.GroupBy) > 0

	if rw != nil && rw.Empty {
		// Provably empty: plan a schema-only execution that touches no
		// rows. Aggregates still fold over the (empty) input — a grand
		// total without GROUP BY produces its one row.
		reasons := make([]string, len(rw.Because))
		for i, why := range rw.Because {
			reasons[i] = "no stored value satisfies " + why.String()
		}
		prep.emptyReason = strings.Join(reasons, "; ")
		prep.rewrites = append(prep.rewrites, plan.Rewrite{Kind: "empty", Detail: prep.emptyReason})
		if isAgg {
			prep.agg, err = p.prepareAggregate(b, sel, nil, prep.emptyReason)
			return prep, err
		}
		st, err := buildRetrieve(b, sel)
		if err != nil {
			return nil, err
		}
		sess, err := p.session(b)
		if err != nil {
			return nil, err
		}
		prep.empty, err = sess.RetrieveSchema(st)
		return prep, err
	}

	where, recs, err := lowerWhere(b, sel, an, rw)
	if err != nil {
		return nil, err
	}
	prep.rewrites = append(prep.rewrites, recs...)

	if isAgg {
		prep.agg, err = p.prepareAggregate(b, sel, where, "")
		return prep, err
	}
	st, err := buildRetrieve(b, sel)
	if err != nil {
		return nil, err
	}
	st.Where = where
	sess, err := p.session(b)
	if err != nil {
		return nil, err
	}
	prep.rp, err = sess.PlanRetrieve(st)
	return prep, err
}

// Run executes the prepared statement through the streaming pipeline.
func (pr *Prepared) Run() (*relation.Relation, error) {
	return pr.RunContext(context.Background())
}

// RunContext executes the prepared statement through the streaming
// operator pipeline. Cancellation is honoured at batch boundaries, so a
// cancelled context stops a long scan mid-stream; a proven-empty
// statement scans zero batches of anything.
func (pr *Prepared) RunContext(ctx context.Context) (*relation.Relation, error) {
	switch {
	case pr.empty != nil:
		return relation.New("result", pr.empty), nil
	case pr.agg != nil:
		return pr.agg.runContext(ctx)
	default:
		res, err := pr.rp.RunContext(ctx)
		if err != nil {
			return nil, err
		}
		return res.Rel, nil
	}
}

// RunMaterialized executes the prepared statement through the legacy
// materializing path — every operator builds its full output before the
// next runs. Retained as the reference implementation the streaming
// pipeline is differentially tested and benchmarked against.
func (pr *Prepared) RunMaterialized() (*relation.Relation, error) {
	switch {
	case pr.empty != nil:
		return relation.New("result", pr.empty), nil
	case pr.agg != nil:
		return pr.agg.runMaterialized()
	default:
		res, err := pr.rp.RunMaterialized()
		if err != nil {
			return nil, err
		}
		return res.Rel, nil
	}
}

// Describe renders the prepared statement as a typed plan with its
// semantic rewrites.
func (pr *Prepared) Describe() *plan.Plan {
	var root plan.Node
	switch {
	case pr.empty != nil:
		root = &plan.Empty{Reason: pr.emptyReason, Cols: planColumns(pr.empty)}
	case pr.agg != nil:
		root = pr.agg.describe()
	default:
		root = pr.rp.Describe()
	}
	return &plan.Plan{SQL: pr.SQL, Root: root, Rewrites: pr.rewrites}
}

// lowerWhere lowers the WHERE clause with the rewrites applied: conjuncts
// the optimizer proved redundant are dropped, implied restrictions are
// synthesized as extra conjuncts marked for EXPLAIN. It returns the
// rewrite records actually applied.
func lowerWhere(b *binder, sel *sqlparse.Select, an *Analysis, rw *Rewrites) (quel.Expr, []plan.Rewrite, error) {
	if rw == nil || (len(rw.Redundant) == 0 && len(rw.Implied) == 0) {
		if sel.Where == nil {
			return nil, nil, nil
		}
		e, err := lowerExpr(b, sel.Where)
		return e, nil, err
	}
	var recs []plan.Rewrite
	drop := map[int]bool{}
	for _, ri := range rw.Redundant {
		if ri < 0 || ri >= len(an.Restrictions) {
			continue
		}
		r := an.Restrictions[ri]
		if !drop[r.Conjunct] {
			drop[r.Conjunct] = true
			recs = append(recs, plan.Rewrite{Kind: "redundant", Detail: "dropped " + r.String()})
		}
	}
	var terms []quel.Expr
	for ci, c := range splitSQLConjuncts(sel.Where) {
		if drop[ci] {
			continue
		}
		e, err := lowerExpr(b, c)
		if err != nil {
			return nil, nil, err
		}
		terms = append(terms, e)
	}
	for _, imp := range rw.Implied {
		es, ok := impliedConjuncts(b, imp)
		if !ok {
			continue
		}
		terms = append(terms, es...)
		recs = append(recs, plan.Rewrite{Kind: "implied", Detail: "pushed down " + describeRestriction(imp)})
	}
	switch len(terms) {
	case 0:
		return nil, recs, nil
	case 1:
		return terms[0], recs, nil
	default:
		return &quel.AndExpr{Terms: terms}, recs, nil
	}
}

// impliedConjuncts synthesizes QUEL conjuncts from an implied
// restriction's interval. The synthesis is conservative: the target
// relation must be bound exactly once in the query (a self-join makes
// the attribution ambiguous) and the bound values must conform to the
// column's type; otherwise the restriction is skipped rather than risk a
// wrong filter.
func impliedConjuncts(b *binder, r Restriction) ([]quel.Expr, bool) {
	target := ""
	for _, name := range b.bindings {
		if strings.EqualFold(b.tables[strings.ToLower(name)], r.Attr.Relation) {
			if target != "" {
				return nil, false
			}
			target = name
		}
	}
	if target == "" {
		return nil, false
	}
	schema := b.schemas[strings.ToLower(target)]
	ci, ok := schema.Index(r.Attr.Attribute)
	if !ok {
		return nil, false
	}
	colType := schema.Col(ci).Type
	col := quel.ColOperand{Col: quel.ColRef{Var: target, Attr: schema.Col(ci).Name}}
	mk := func(op string, v relation.Value) (quel.Expr, bool) {
		if !v.Conforms(colType) {
			return nil, false
		}
		return &quel.BinExpr{Op: op, L: col, R: quel.ConstOperand{Val: v}, Implied: true}, true
	}
	if !r.HasInterval {
		if r.Op == "" {
			return nil, false
		}
		e, ok := mk(r.Op, r.Val)
		if !ok {
			return nil, false
		}
		return []quel.Expr{e}, true
	}
	iv := r.Interval
	if iv.IsPoint() {
		e, ok := mk("=", iv.Lo.Value)
		if !ok {
			return nil, false
		}
		return []quel.Expr{e}, true
	}
	var out []quel.Expr
	if !iv.Lo.Unbounded {
		op := ">="
		if iv.Lo.Open {
			op = ">"
		}
		e, ok := mk(op, iv.Lo.Value)
		if !ok {
			return nil, false
		}
		out = append(out, e)
	}
	if !iv.Hi.Unbounded {
		op := "<="
		if iv.Hi.Open {
			op = "<"
		}
		e, ok := mk(op, iv.Hi.Value)
		if !ok {
			return nil, false
		}
		out = append(out, e)
	}
	return out, len(out) > 0
}

// describeRestriction renders a restriction for rewrite records,
// preferring the interval form when the operator alone would lose a
// bound.
func describeRestriction(r Restriction) string {
	if r.HasInterval && !r.Interval.IsPoint() &&
		!r.Interval.Lo.Unbounded && !r.Interval.Hi.Unbounded {
		return fmt.Sprintf("%s in %s", r.Attr, r.Interval)
	}
	if r.Op != "" {
		return r.String()
	}
	if r.HasInterval {
		return fmt.Sprintf("%s in %s", r.Attr, r.Interval)
	}
	return r.Attr.String()
}

// planColumns converts a relation schema to plan columns.
func planColumns(s *relation.Schema) []plan.Column {
	cols := make([]plan.Column, s.Len())
	for i := 0; i < s.Len(); i++ {
		c := s.Col(i)
		cols[i] = plan.Column{Name: c.Name, Type: c.Type.String()}
	}
	return cols
}
