// Package shell implements the interactive intensional query processor
// behind cmd/iqp: SQL queries answered extensionally and intensionally,
// DML statements routed through the durable write path, plus
// dot-commands for induction, incremental rule maintenance, rule
// inspection, integrity checking, decision trees, checkpointing, and
// database relocation. It reads from an io.Reader and writes to an
// io.Writer so the whole loop is testable.
//
// The command list is a single table (Commands) that the .help screen
// is rendered from and that the README's command table is tested
// against, so the two cannot drift.
package shell

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"intensional/internal/answer"
	"intensional/internal/core"
	"intensional/internal/id3"
	"intensional/internal/induct"
	"intensional/internal/integrity"
	"intensional/internal/ker"
	"intensional/internal/maintain"
	"intensional/internal/query"
	"intensional/internal/rules"
	"intensional/internal/semopt"
	"intensional/internal/sqlparse"
)

// Shell is one interactive session.
type Shell struct {
	sys     *core.System
	model   *ker.Model // optional, enables .check
	mode    answer.Mode
	wantExt bool // print the extensional section of answers
	wantInt bool // print the intensional section of answers
	explain     bool // print derivation traces after each query
	explainPlan bool // print the execution plan after each query
	out         io.Writer
}

// New creates a shell over a system. model may be nil (disables .check).
func New(sys *core.System, model *ker.Model, out io.Writer) *Shell {
	return &Shell{sys: sys, model: model, mode: answer.Combined, wantExt: true, wantInt: true, out: out}
}

// Command is one row of the shell's command table — the single source
// the .help screen and the README's command documentation draw from.
type Command struct {
	Name    string // the command or input form, e.g. ".induce"
	Args    string // argument syntax, e.g. "[Nc]"
	Summary string
}

// Modes lists the five answer modes .mode accepts — the same set the
// iqpd server's POST /query accepts, in the same spelling.
func Modes() []string {
	return []string{"extensional", "intensional", "combined", "forward", "backward"}
}

// commands is the command table in help order. Keep summaries to one
// line; HelpText aligns on the name+args column.
var commands = []Command{
	{"SELECT", "...", "run a query (both answer forms; aggregates + GROUP BY supported)"},
	{"INSERT/UPDATE/DELETE", "...", "mutate the database through the write path (WAL-logged when durable)"},
	{".induce", "[Nc]", "run the Inductive Learning Subsystem (default Nc=2)"},
	{".maintain", "[Nc]", "re-induce only the schemes holding stale or refinable rules"},
	{".rules", "", "show the rule base with staleness marks"},
	{".status", "", "snapshot version, rule staleness, durability, WAL size"},
	{".schema", "", "list relations"},
	{".show", "REL", "print a relation"},
	{".hierarchies", "", "list declared type hierarchies"},
	{".hierarchy", "OBJ", "render one hierarchy chain with instance counts"},
	{".comparisons", "", "induce inter-object comparison knowledge"},
	{".check", "", "validate data against the KER schema constraints"},
	{".tree", "REL Y X...", "grow a decision tree classifying Y from X columns"},
	{".explain", "on|off|plan", "print derivation traces (on) or the execution plan (plan) after each query"},
	{".optimize", "SQL", "semantic-optimization advice for a query"},
	{".mode", "MODE", "extensional | intensional | combined | forward | backward"},
	{".checkpoint", "", "save the durable database and truncate its WAL"},
	{".save", "DIR", "save database + dictionary + rules"},
	{".quit", "", "exit"},
}

// Commands returns the command table.
func Commands() []Command { return commands }

// HelpText renders the command table as the .help screen.
func HelpText() string {
	var b strings.Builder
	for _, c := range commands {
		left := strings.TrimSpace(c.Name + " " + c.Args)
		fmt.Fprintf(&b, "  %-21s %s\n", left, c.Summary)
	}
	return strings.TrimRight(b.String(), "\n")
}

// Run processes lines until EOF or .quit.
func (s *Shell) Run(in io.Reader) error {
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	fmt.Fprint(s.out, "iqp> ")
	for sc.Scan() {
		if !s.Exec(strings.TrimSpace(sc.Text())) {
			return nil
		}
		fmt.Fprint(s.out, "iqp> ")
	}
	return sc.Err()
}

// Exec handles one line; it returns false when the session should end.
func (s *Shell) Exec(line string) bool {
	switch {
	case line == "":
	case line == ".quit" || line == ".exit":
		return false
	case line == ".help":
		fmt.Fprintln(s.out, HelpText())
	case line == ".rules":
		s.cmdRules()
	case line == ".status":
		s.cmdStatus()
	case line == ".checkpoint":
		s.cmdCheckpoint()
	case line == ".schema":
		s.cmdSchema()
	case line == ".hierarchies":
		s.cmdHierarchies()
	case strings.HasPrefix(line, ".hierarchy"):
		s.cmdHierarchy(arg(line, ".hierarchy"))
	case line == ".comparisons":
		s.cmdComparisons()
	case line == ".check":
		s.cmdCheck()
	case strings.HasPrefix(line, ".show"):
		s.cmdShow(arg(line, ".show"))
	case strings.HasPrefix(line, ".tree"):
		s.cmdTree(arg(line, ".tree"))
	case strings.HasPrefix(line, ".optimize"):
		s.cmdOptimize(arg(line, ".optimize"))
	case strings.HasPrefix(line, ".explain"):
		s.cmdExplain(arg(line, ".explain"))
	case strings.HasPrefix(line, ".mode"):
		s.cmdMode(arg(line, ".mode"))
	case strings.HasPrefix(line, ".induce"):
		s.cmdInduce(arg(line, ".induce"))
	case strings.HasPrefix(line, ".maintain"):
		s.cmdMaintain(arg(line, ".maintain"))
	case strings.HasPrefix(line, ".save"):
		s.cmdSave(arg(line, ".save"))
	case strings.HasPrefix(line, "."):
		fmt.Fprintln(s.out, "unknown command; .help lists commands")
	case sqlparse.LooksLikeDML(line):
		s.cmdMutate(line)
	default:
		s.cmdQuery(line)
	}
	return true
}

func arg(line, cmd string) string {
	return strings.TrimSpace(strings.TrimPrefix(line, cmd))
}

func (s *Shell) cmdRules() {
	full, st, _ := s.sys.RuleStatus()
	if full.Len() == 0 {
		fmt.Fprintln(s.out, "rule base empty — run .induce first")
		return
	}
	for _, r := range full.Rules() {
		fmt.Fprintf(s.out, "R%-3d %-70s (support %d)", r.ID, r.String(), r.Support)
		if inf := st.Info(r.ID); inf.Status != maintain.Valid {
			fmt.Fprintf(s.out, "  [%s", inf.Status)
			if inf.Counterexamples > 0 {
				fmt.Fprintf(s.out, ", %d counterexample(s)", inf.Counterexamples)
			}
			fmt.Fprint(s.out, "]")
		}
		fmt.Fprintln(s.out)
	}
	if stale, refinable := st.Counts(); stale > 0 || refinable > 0 {
		fmt.Fprintf(s.out, "%d stale (withheld from inference), %d refinable — run .maintain\n", stale, refinable)
	}
}

func (s *Shell) cmdStatus() {
	full, st, version := s.sys.RuleStatus()
	stale, refinable := st.Counts()
	fmt.Fprintf(s.out, "version %d: %d relations, %d rules (%d serving, %d stale, %d refinable)\n",
		version, s.sys.Catalog().Len(), full.Len(), full.Len()-stale, stale, refinable)
	if s.sys.Durable() {
		fmt.Fprintf(s.out, "durable: %d bytes in the write-ahead log\n", s.sys.WalSize())
	} else {
		fmt.Fprintln(s.out, "in-memory: no write-ahead log (open with iqp -db DIR -wal)")
	}
	if d := s.sys.Degraded(); d != nil {
		fmt.Fprintf(s.out, "DEGRADED (read-only since %s): %s — queries serve, mutations are refused; fix the disk and .checkpoint to recover\n",
			d.Since.UTC().Format(time.RFC3339), d.Reason)
	}
}

func (s *Shell) cmdCheckpoint() {
	if err := s.sys.Checkpoint(); err != nil {
		fmt.Fprintln(s.out, "error:", err)
		return
	}
	fmt.Fprintln(s.out, "checkpointed: database saved, write-ahead log truncated")
}

// cmdMutate routes INSERT/UPDATE/DELETE through the write path: the
// statement commits (durably, when the system has a WAL) and installs a
// new snapshot whose inference set withholds any contradicted rule.
func (s *Shell) cmdMutate(sql string) {
	res, err := s.sys.Apply(context.Background(), sql)
	if err != nil {
		fmt.Fprintln(s.out, "error:", err)
		return
	}
	for _, m := range res.Mutations {
		fmt.Fprintf(s.out, "%s %s: %d inserted, %d deleted (version %d)\n",
			m.Kind, m.Table, len(m.Inserted), len(m.Deleted), res.Version)
	}
	if res.Stale > 0 {
		fmt.Fprintf(s.out, "warning: %d rule(s) now stale and withheld from inference — run .maintain\n", res.Stale)
	} else if res.Refinable > 0 {
		fmt.Fprintf(s.out, "note: %d rule(s) refinable — .maintain will tighten them\n", res.Refinable)
	}
	if res.Checkpointed {
		fmt.Fprintln(s.out, "auto-checkpoint: database saved, write-ahead log truncated")
	}
	if res.CheckpointErr != "" {
		fmt.Fprintf(s.out, "warning: batch committed, but auto-checkpoint failed: %s\n", res.CheckpointErr)
	}
}

func (s *Shell) cmdSchema() {
	for _, name := range s.sys.Catalog().Names() {
		r, err := s.sys.Catalog().Get(name)
		if err != nil {
			continue
		}
		fmt.Fprintf(s.out, "%-12s %s  (%d tuples)\n", name, r.Schema(), r.Len())
	}
}

func (s *Shell) cmdHierarchies() {
	hs := s.sys.Dictionary().Hierarchies()
	if len(hs) == 0 {
		fmt.Fprintln(s.out, "no hierarchies declared")
		return
	}
	for _, h := range hs {
		names := make([]string, len(h.Subtypes))
		for i, sub := range h.Subtypes {
			names[i] = sub.Name
		}
		fmt.Fprintf(s.out, "%s contains %s (classified by %s)\n",
			h.Object, strings.Join(names, ", "), h.ClassifyingAttr)
	}
}

func (s *Shell) cmdHierarchy(object string) {
	if object == "" {
		fmt.Fprintln(s.out, "usage: .hierarchy OBJECT")
		return
	}
	out, err := s.sys.Dictionary().RenderTree(object)
	if err != nil {
		fmt.Fprintln(s.out, "error:", err)
		return
	}
	fmt.Fprint(s.out, out)
}

func (s *Shell) cmdComparisons() {
	rels := s.sys.Dictionary().Relationships()
	if len(rels) == 0 {
		fmt.Fprintln(s.out, "no relationships declared")
		return
	}
	in := induct.New(s.sys.Dictionary(), induct.Options{Nc: 2})
	total := 0
	for _, r := range rels {
		cs, err := in.InduceComparisons(r)
		if err != nil {
			fmt.Fprintln(s.out, "error:", err)
			return
		}
		for _, c := range cs {
			fmt.Fprintln(s.out, c)
			total++
		}
	}
	if total == 0 {
		fmt.Fprintln(s.out, "no inter-object comparisons hold uniformly")
	}
}

func (s *Shell) cmdCheck() {
	if s.model == nil {
		fmt.Fprintln(s.out, "no KER schema loaded; integrity checking unavailable")
		return
	}
	vs, err := integrity.Check(s.model, s.sys.Catalog())
	if err != nil {
		fmt.Fprintln(s.out, "error:", err)
		return
	}
	if len(vs) == 0 {
		fmt.Fprintln(s.out, "database satisfies every declared constraint")
		return
	}
	for _, v := range vs {
		fmt.Fprintln(s.out, v)
	}
}

func (s *Shell) cmdShow(name string) {
	if name == "" {
		fmt.Fprintln(s.out, "usage: .show RELATION")
		return
	}
	r, err := s.sys.Catalog().Get(name)
	if err != nil {
		fmt.Fprintln(s.out, "error:", err)
		return
	}
	fmt.Fprint(s.out, r)
}

// cmdTree grows a decision tree: ".tree RELATION CLASSCOL XCOL [XCOL...]".
func (s *Shell) cmdTree(args string) {
	fields := strings.Fields(args)
	if len(fields) < 3 {
		fmt.Fprintln(s.out, "usage: .tree RELATION CLASSCOL XCOL [XCOL...]")
		return
	}
	rel, err := s.sys.Catalog().Get(fields[0])
	if err != nil {
		fmt.Fprintln(s.out, "error:", err)
		return
	}
	xCols := fields[2:]
	attrs := make([]rules.AttrRef, len(xCols))
	for i, c := range xCols {
		attrs[i] = rules.Attr(rel.Name(), c)
	}
	tr, err := id3.Build(rel, xCols, fields[1], attrs, rules.Attr(rel.Name(), fields[1]),
		id3.Options{MinLeaf: 1})
	if err != nil {
		fmt.Fprintln(s.out, "error:", err)
		return
	}
	fmt.Fprint(s.out, tr)
	acc, err := tr.Accuracy(rel, fields[1])
	if err == nil {
		fmt.Fprintf(s.out, "training accuracy %.2f, %d leaves\n", acc, tr.Leaves())
	}
}

func (s *Shell) cmdOptimize(sql string) {
	if sql == "" {
		fmt.Fprintln(s.out, "usage: .optimize SELECT ...")
		return
	}
	_, an, err := query.New(s.sys.Catalog()).Run(sql)
	if err != nil {
		fmt.Fprintln(s.out, "error:", err)
		return
	}
	rep, err := semopt.Analyze(an, s.sys.Dictionary())
	if err != nil {
		fmt.Fprintln(s.out, "error:", err)
		return
	}
	fmt.Fprint(s.out, rep)
}

func (s *Shell) cmdExplain(arg string) {
	switch arg {
	case "on":
		s.explain = true
	case "plan":
		s.explainPlan = true
	case "off":
		s.explain = false
		s.explainPlan = false
	default:
		fmt.Fprintln(s.out, "usage: .explain on|off|plan")
		return
	}
	fmt.Fprintf(s.out, "explain %s\n", arg)
}

func (s *Shell) cmdMode(m string) {
	switch m {
	case "forward":
		s.mode, s.wantExt, s.wantInt = answer.ForwardOnly, true, true
	case "backward":
		s.mode, s.wantExt, s.wantInt = answer.BackwardOnly, true, true
	case "combined":
		s.mode, s.wantExt, s.wantInt = answer.Combined, true, true
	case "extensional":
		s.mode, s.wantExt, s.wantInt = answer.Combined, true, false
	case "intensional":
		s.mode, s.wantExt, s.wantInt = answer.Combined, false, true
	default:
		fmt.Fprintf(s.out, "usage: .mode %s\n", strings.Join(Modes(), "|"))
		return
	}
	fmt.Fprintf(s.out, "mode set to %s\n", m)
}

func (s *Shell) cmdInduce(ncArg string) {
	nc := 2
	if ncArg != "" {
		n, err := strconv.Atoi(ncArg)
		if err != nil {
			fmt.Fprintln(s.out, "usage: .induce [Nc]")
			return
		}
		nc = n
	}
	set, err := s.sys.Induce(induct.Options{Nc: nc})
	if err != nil {
		fmt.Fprintln(s.out, "error:", err)
		return
	}
	fmt.Fprintf(s.out, "induced %d rules (Nc = %d)\n", set.Len(), nc)
}

func (s *Shell) cmdMaintain(ncArg string) {
	nc := 2
	if ncArg != "" {
		n, err := strconv.Atoi(ncArg)
		if err != nil {
			fmt.Fprintln(s.out, "usage: .maintain [Nc]")
			return
		}
		nc = n
	}
	res, err := s.sys.Maintain(context.Background(), induct.Options{Nc: nc})
	if err != nil {
		fmt.Fprintln(s.out, "error:", err)
		return
	}
	if len(res.Schemes) == 0 {
		fmt.Fprintln(s.out, "rule base already all-valid; nothing to re-induce")
		return
	}
	fmt.Fprintf(s.out, "re-induced %d scheme(s): dropped %d rule(s), added %d (version %d)\n",
		len(res.Schemes), res.Dropped, res.Added, res.Version)
}

func (s *Shell) cmdSave(dir string) {
	if dir == "" {
		fmt.Fprintln(s.out, "usage: .save DIR")
		return
	}
	if err := s.sys.Save(dir); err != nil {
		fmt.Fprintln(s.out, "error:", err)
		return
	}
	fmt.Fprintln(s.out, "saved to", dir)
}

func (s *Shell) cmdQuery(sql string) {
	resp, err := s.sys.Query(sql, s.mode)
	if err != nil {
		fmt.Fprintln(s.out, "error:", err)
		return
	}
	if s.wantExt {
		fmt.Fprintf(s.out, "extensional answer (%d tuples):\n%s", resp.Extensional.Len(), resp.Extensional)
	}
	if s.wantInt {
		fmt.Fprintf(s.out, "intensional answer:\n  %s\n",
			strings.ReplaceAll(resp.Intensional.Text(), "\n", "\n  "))
	}
	if s.explain {
		fmt.Fprintf(s.out, "derivation:\n  %s\n",
			strings.ReplaceAll(strings.TrimRight(resp.Inference.Explain(s.sys.Rules()), "\n"), "\n", "\n  "))
	}
	if s.explainPlan {
		// The prepared-statement cache makes this free: Query above
		// already planned (and cached) this statement, so Explain
		// renders the very plan that just ran.
		pl, err := s.sys.Explain(sql)
		if err != nil {
			fmt.Fprintln(s.out, "plan error:", err)
			return
		}
		fmt.Fprintf(s.out, "plan:\n  %s\n",
			strings.ReplaceAll(strings.TrimRight(pl.String(), "\n"), "\n", "\n  "))
	}
}
