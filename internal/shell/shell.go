// Package shell implements the interactive intensional query processor
// behind cmd/iqp: SQL queries answered extensionally and intensionally,
// plus dot-commands for induction, rule inspection, integrity checking,
// decision trees, and database relocation. It reads from an io.Reader
// and writes to an io.Writer so the whole loop is testable.
package shell

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"intensional/internal/answer"
	"intensional/internal/core"
	"intensional/internal/id3"
	"intensional/internal/induct"
	"intensional/internal/integrity"
	"intensional/internal/ker"
	"intensional/internal/query"
	"intensional/internal/rules"
	"intensional/internal/semopt"
)

// Shell is one interactive session.
type Shell struct {
	sys     *core.System
	model   *ker.Model // optional, enables .check
	mode    answer.Mode
	explain bool
	out     io.Writer
}

// New creates a shell over a system. model may be nil (disables .check).
func New(sys *core.System, model *ker.Model, out io.Writer) *Shell {
	return &Shell{sys: sys, model: model, mode: answer.Combined, out: out}
}

// Run processes lines until EOF or .quit.
func (s *Shell) Run(in io.Reader) error {
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	fmt.Fprint(s.out, "iqp> ")
	for sc.Scan() {
		if !s.Exec(strings.TrimSpace(sc.Text())) {
			return nil
		}
		fmt.Fprint(s.out, "iqp> ")
	}
	return sc.Err()
}

// Exec handles one line; it returns false when the session should end.
func (s *Shell) Exec(line string) bool {
	switch {
	case line == "":
	case line == ".quit" || line == ".exit":
		return false
	case line == ".help":
		fmt.Fprintln(s.out, helpText)
	case line == ".rules":
		s.cmdRules()
	case line == ".schema":
		s.cmdSchema()
	case line == ".hierarchies":
		s.cmdHierarchies()
	case strings.HasPrefix(line, ".hierarchy"):
		s.cmdHierarchy(arg(line, ".hierarchy"))
	case line == ".comparisons":
		s.cmdComparisons()
	case line == ".check":
		s.cmdCheck()
	case strings.HasPrefix(line, ".show"):
		s.cmdShow(arg(line, ".show"))
	case strings.HasPrefix(line, ".tree"):
		s.cmdTree(arg(line, ".tree"))
	case strings.HasPrefix(line, ".optimize"):
		s.cmdOptimize(arg(line, ".optimize"))
	case strings.HasPrefix(line, ".explain"):
		s.cmdExplain(arg(line, ".explain"))
	case strings.HasPrefix(line, ".mode"):
		s.cmdMode(arg(line, ".mode"))
	case strings.HasPrefix(line, ".induce"):
		s.cmdInduce(arg(line, ".induce"))
	case strings.HasPrefix(line, ".save"):
		s.cmdSave(arg(line, ".save"))
	case strings.HasPrefix(line, "."):
		fmt.Fprintln(s.out, "unknown command; .help lists commands")
	default:
		s.cmdQuery(line)
	}
	return true
}

func arg(line, cmd string) string {
	return strings.TrimSpace(strings.TrimPrefix(line, cmd))
}

func (s *Shell) cmdRules() {
	if s.sys.Rules().Len() == 0 {
		fmt.Fprintln(s.out, "rule base empty — run .induce first")
		return
	}
	for _, r := range s.sys.Rules().Rules() {
		fmt.Fprintf(s.out, "R%-3d %-70s (support %d)\n", r.ID, r.String(), r.Support)
	}
}

func (s *Shell) cmdSchema() {
	for _, name := range s.sys.Catalog().Names() {
		r, err := s.sys.Catalog().Get(name)
		if err != nil {
			continue
		}
		fmt.Fprintf(s.out, "%-12s %s  (%d tuples)\n", name, r.Schema(), r.Len())
	}
}

func (s *Shell) cmdHierarchies() {
	hs := s.sys.Dictionary().Hierarchies()
	if len(hs) == 0 {
		fmt.Fprintln(s.out, "no hierarchies declared")
		return
	}
	for _, h := range hs {
		names := make([]string, len(h.Subtypes))
		for i, sub := range h.Subtypes {
			names[i] = sub.Name
		}
		fmt.Fprintf(s.out, "%s contains %s (classified by %s)\n",
			h.Object, strings.Join(names, ", "), h.ClassifyingAttr)
	}
}

func (s *Shell) cmdHierarchy(object string) {
	if object == "" {
		fmt.Fprintln(s.out, "usage: .hierarchy OBJECT")
		return
	}
	out, err := s.sys.Dictionary().RenderTree(object)
	if err != nil {
		fmt.Fprintln(s.out, "error:", err)
		return
	}
	fmt.Fprint(s.out, out)
}

func (s *Shell) cmdComparisons() {
	rels := s.sys.Dictionary().Relationships()
	if len(rels) == 0 {
		fmt.Fprintln(s.out, "no relationships declared")
		return
	}
	in := induct.New(s.sys.Dictionary(), induct.Options{Nc: 2})
	total := 0
	for _, r := range rels {
		cs, err := in.InduceComparisons(r)
		if err != nil {
			fmt.Fprintln(s.out, "error:", err)
			return
		}
		for _, c := range cs {
			fmt.Fprintln(s.out, c)
			total++
		}
	}
	if total == 0 {
		fmt.Fprintln(s.out, "no inter-object comparisons hold uniformly")
	}
}

func (s *Shell) cmdCheck() {
	if s.model == nil {
		fmt.Fprintln(s.out, "no KER schema loaded; integrity checking unavailable")
		return
	}
	vs, err := integrity.Check(s.model, s.sys.Catalog())
	if err != nil {
		fmt.Fprintln(s.out, "error:", err)
		return
	}
	if len(vs) == 0 {
		fmt.Fprintln(s.out, "database satisfies every declared constraint")
		return
	}
	for _, v := range vs {
		fmt.Fprintln(s.out, v)
	}
}

func (s *Shell) cmdShow(name string) {
	if name == "" {
		fmt.Fprintln(s.out, "usage: .show RELATION")
		return
	}
	r, err := s.sys.Catalog().Get(name)
	if err != nil {
		fmt.Fprintln(s.out, "error:", err)
		return
	}
	fmt.Fprint(s.out, r)
}

// cmdTree grows a decision tree: ".tree RELATION CLASSCOL XCOL [XCOL...]".
func (s *Shell) cmdTree(args string) {
	fields := strings.Fields(args)
	if len(fields) < 3 {
		fmt.Fprintln(s.out, "usage: .tree RELATION CLASSCOL XCOL [XCOL...]")
		return
	}
	rel, err := s.sys.Catalog().Get(fields[0])
	if err != nil {
		fmt.Fprintln(s.out, "error:", err)
		return
	}
	xCols := fields[2:]
	attrs := make([]rules.AttrRef, len(xCols))
	for i, c := range xCols {
		attrs[i] = rules.Attr(rel.Name(), c)
	}
	tr, err := id3.Build(rel, xCols, fields[1], attrs, rules.Attr(rel.Name(), fields[1]),
		id3.Options{MinLeaf: 1})
	if err != nil {
		fmt.Fprintln(s.out, "error:", err)
		return
	}
	fmt.Fprint(s.out, tr)
	acc, err := tr.Accuracy(rel, fields[1])
	if err == nil {
		fmt.Fprintf(s.out, "training accuracy %.2f, %d leaves\n", acc, tr.Leaves())
	}
}

func (s *Shell) cmdOptimize(sql string) {
	if sql == "" {
		fmt.Fprintln(s.out, "usage: .optimize SELECT ...")
		return
	}
	_, an, err := query.New(s.sys.Catalog()).Run(sql)
	if err != nil {
		fmt.Fprintln(s.out, "error:", err)
		return
	}
	rep, err := semopt.Analyze(an, s.sys.Dictionary())
	if err != nil {
		fmt.Fprintln(s.out, "error:", err)
		return
	}
	fmt.Fprint(s.out, rep)
}

func (s *Shell) cmdExplain(arg string) {
	switch arg {
	case "on":
		s.explain = true
	case "off":
		s.explain = false
	default:
		fmt.Fprintln(s.out, "usage: .explain on|off")
		return
	}
	fmt.Fprintf(s.out, "explain %s\n", arg)
}

func (s *Shell) cmdMode(m string) {
	switch m {
	case "forward":
		s.mode = answer.ForwardOnly
	case "backward":
		s.mode = answer.BackwardOnly
	case "combined":
		s.mode = answer.Combined
	default:
		fmt.Fprintln(s.out, "usage: .mode forward|backward|combined")
		return
	}
	fmt.Fprintf(s.out, "mode set to %s\n", m)
}

func (s *Shell) cmdInduce(ncArg string) {
	nc := 2
	if ncArg != "" {
		n, err := strconv.Atoi(ncArg)
		if err != nil {
			fmt.Fprintln(s.out, "usage: .induce [Nc]")
			return
		}
		nc = n
	}
	set, err := s.sys.Induce(induct.Options{Nc: nc})
	if err != nil {
		fmt.Fprintln(s.out, "error:", err)
		return
	}
	fmt.Fprintf(s.out, "induced %d rules (Nc = %d)\n", set.Len(), nc)
}

func (s *Shell) cmdSave(dir string) {
	if dir == "" {
		fmt.Fprintln(s.out, "usage: .save DIR")
		return
	}
	if err := s.sys.Save(dir); err != nil {
		fmt.Fprintln(s.out, "error:", err)
		return
	}
	fmt.Fprintln(s.out, "saved to", dir)
}

func (s *Shell) cmdQuery(sql string) {
	resp, err := s.sys.Query(sql, s.mode)
	if err != nil {
		fmt.Fprintln(s.out, "error:", err)
		return
	}
	fmt.Fprintf(s.out, "extensional answer (%d tuples):\n%s", resp.Extensional.Len(), resp.Extensional)
	fmt.Fprintf(s.out, "intensional answer:\n  %s\n",
		strings.ReplaceAll(resp.Intensional.Text(), "\n", "\n  "))
	if s.explain {
		fmt.Fprintf(s.out, "derivation:\n  %s\n",
			strings.ReplaceAll(strings.TrimRight(resp.Inference.Explain(s.sys.Rules()), "\n"), "\n", "\n  "))
	}
}

const helpText = `  SELECT ...          run a query (both answer forms; aggregates + GROUP BY supported)
  .induce [Nc]        run the Inductive Learning Subsystem (default Nc=2)
  .rules              show the rule base
  .schema             list relations
  .show REL           print a relation
  .hierarchies        list declared type hierarchies
  .hierarchy OBJ      render one hierarchy chain with instance counts
  .comparisons        induce inter-object comparison knowledge
  .check              validate data against the KER schema constraints
  .tree REL Y X...    grow a decision tree classifying Y from X columns
  .explain on|off     print derivation traces after each query
  .optimize SQL       semantic-optimization advice for a query
  .mode MODE          forward | backward | combined
  .save DIR           save database + dictionary + rules
  .quit               exit`
