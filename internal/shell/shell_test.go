package shell_test

import (
	"bytes"
	"strings"
	"testing"

	"intensional/internal/core"
	"intensional/internal/ker"
	"intensional/internal/shell"
	"intensional/internal/shipdb"
)

func newShell(t *testing.T) (*shell.Shell, *bytes.Buffer) {
	t.Helper()
	cat := shipdb.Catalog()
	d, err := shipdb.Dictionary(cat)
	if err != nil {
		t.Fatal(err)
	}
	m, err := ker.Parse(shipdb.KERSchema)
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	return shell.New(core.New(cat, d), m, &out), &out
}

func run(t *testing.T, lines ...string) string {
	t.Helper()
	sh, out := newShell(t)
	for _, l := range lines {
		if !sh.Exec(l) {
			break
		}
	}
	return out.String()
}

func TestHelpAndUnknown(t *testing.T) {
	out := run(t, ".help", ".bogus")
	if !strings.Contains(out, ".induce [Nc]") {
		t.Errorf("help missing: %q", out)
	}
	if !strings.Contains(out, "unknown command") {
		t.Errorf("unknown command not reported: %q", out)
	}
}

func TestInduceRulesAndQuery(t *testing.T) {
	out := run(t,
		".induce 3",
		".rules",
		".mode backward",
		`SELECT SUBMARINE.NAME, SUBMARINE.CLASS FROM SUBMARINE, CLASS
		 WHERE SUBMARINE.CLASS = CLASS.CLASS AND CLASS.TYPE = "SSBN"`,
	)
	for _, want := range []string{
		"induced 18 rules (Nc = 3)",
		"SSBN623 <= SUBMARINE.Id <= SSBN635",
		"mode set to backward",
		"extensional answer (7 tuples)",
		"Classes in the range of 0101 to 0103 are SSBN",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRulesBeforeInduce(t *testing.T) {
	out := run(t, ".rules")
	if !strings.Contains(out, "rule base empty") {
		t.Errorf("output = %q", out)
	}
}

func TestSchemaAndShow(t *testing.T) {
	out := run(t, ".schema", ".show TYPE", ".show NOPE", ".show")
	for _, want := range []string{"SUBMARINE", "(24 tuples)", "ballistic nuclear missile sub", "error:", "usage: .show"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestHierarchiesAndComparisons(t *testing.T) {
	out := run(t, ".hierarchies", ".comparisons")
	if !strings.Contains(out, "CLASS contains SSBN, SSN (classified by Type)") {
		t.Errorf("hierarchies output = %q", out)
	}
	tree := run(t, ".hierarchy SUBMARINE", ".hierarchy", ".hierarchy NOPE")
	for _, want := range []string{
		"SUBMARINE (24 instances)",
		"C0103 (Class = 0103, 3 instances)",
		"level above via SUBMARINE.Class = CLASS.Class",
		"SSBN (Type = SSBN, 4 instances)",
		"usage: .hierarchy",
		"error:",
	} {
		if !strings.Contains(tree, want) {
			t.Errorf("hierarchy output missing %q:\n%s", want, tree)
		}
	}
	// The ship test bed has no numeric cross-object comparison that holds.
	if !strings.Contains(out, "no inter-object comparisons hold uniformly") {
		t.Errorf("comparisons output = %q", out)
	}
}

func TestCheck(t *testing.T) {
	out := run(t, ".check")
	if !strings.Contains(out, "satisfies every declared constraint") {
		t.Errorf("check output = %q", out)
	}
}

func TestTree(t *testing.T) {
	out := run(t, ".tree CLASS Type Displacement", ".tree", ".tree NOPE a b")
	for _, want := range []string{"split on CLASS.Displacement <= 6955", "training accuracy 1.00", "usage: .tree", "error:"} {
		if !strings.Contains(out, want) {
			t.Errorf("tree output missing %q:\n%s", want, out)
		}
	}
}

func TestOptimize(t *testing.T) {
	out := run(t,
		".induce 3",
		`.optimize SELECT Class FROM CLASS WHERE Displacement > 3000 AND Displacement > 8000`,
		".optimize",
		".optimize garbage",
	)
	for _, want := range []string{
		"implied filter: CLASS.Type = \"SSBN\"",
		"redundant restriction #0",
		"usage: .optimize",
		"error:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestExplain(t *testing.T) {
	out := run(t,
		".induce 3",
		".explain on",
		".mode forward",
		`SELECT SUBMARINE.ID FROM SUBMARINE, CLASS
		 WHERE SUBMARINE.CLASS = CLASS.CLASS AND CLASS.DISPLACEMENT > 8000`,
		".explain off",
		".explain sideways",
	)
	for _, want := range []string{
		"derivation:",
		"condition: CLASS.Displacement in [16600..30000]",
		"derived:   CLASS.Type in [SSBN..SSBN] (isa SSBN)",
		"by R9: if 7250 <= CLASS.Displacement <= 30000 then CLASS.Type = SSBN",
		"usage: .explain",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestModeErrors(t *testing.T) {
	out := run(t, ".mode sideways", ".induce xyz")
	if !strings.Contains(out, "usage: .mode") || !strings.Contains(out, "usage: .induce") {
		t.Errorf("output = %q", out)
	}
}

func TestSaveAndQuit(t *testing.T) {
	dir := t.TempDir()
	sh, out := newShell(t)
	sh.Exec(".induce 3")
	sh.Exec(".save " + dir)
	sh.Exec(".save")
	if !strings.Contains(out.String(), "saved to "+dir) {
		t.Errorf("save output = %q", out.String())
	}
	if !strings.Contains(out.String(), "usage: .save") {
		t.Errorf("save usage missing: %q", out.String())
	}
	if sh.Exec(".quit") {
		t.Error(".quit should end the session")
	}
	// The saved directory must reopen.
	if _, err := core.Open(dir); err != nil {
		t.Errorf("reopen: %v", err)
	}
}

func TestRunLoop(t *testing.T) {
	sh, out := newShell(t)
	in := strings.NewReader(".schema\n.quit\n.rules\n")
	if err := sh.Run(in); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "SUBMARINE") {
		t.Errorf("run loop output = %q", s)
	}
	if strings.Contains(s, "rule base empty") {
		t.Error(".quit should stop processing")
	}
}

func TestQueryError(t *testing.T) {
	out := run(t, "SELECT nope FROM nothing")
	if !strings.Contains(out, "error:") {
		t.Errorf("output = %q", out)
	}
}

func TestAggregateQueryInShell(t *testing.T) {
	out := run(t, "SELECT Type, COUNT(*) FROM CLASS GROUP BY Type")
	if !strings.Contains(out, "extensional answer (2 tuples)") {
		t.Errorf("output = %q", out)
	}
}
