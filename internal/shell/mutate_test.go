package shell_test

import (
	"bytes"
	"strings"
	"testing"

	"intensional/internal/core"
	"intensional/internal/shell"
	"intensional/internal/shipdb"
)

// durableShell builds a shell over a durable system saved to a temp
// directory.
func durableShell(t *testing.T) (*shell.Shell, *bytes.Buffer, string) {
	t.Helper()
	cat := shipdb.Catalog()
	d, err := shipdb.Dictionary(cat)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir() + "/db"
	if err := core.New(cat, d).Save(dir); err != nil {
		t.Fatal(err)
	}
	sys, err := core.OpenDurable(dir, core.DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sys.Close() })
	var out bytes.Buffer
	return shell.New(sys, nil, &out), &out, dir
}

func TestShellMutateLifecycle(t *testing.T) {
	out := run(t,
		".induce 3",
		`INSERT INTO SUBMARINE VALUES ('SSN992', 'Shelltest', '0204')`,
		`INSERT INTO CLASS VALUES ('9901', 'Contradictor', 'SSN', 16600)`,
		".rules",
		".maintain 3",
		".maintain 3",
		`DELETE FROM SUBMARINE WHERE Id = 'SSN992'`,
		`UPDATE CLASS SET ClassName = 'Renamed' WHERE Class = '9901'`,
	)
	for _, want := range []string{
		"insert SUBMARINE: 1 inserted, 0 deleted",
		"rule(s) now stale and withheld from inference — run .maintain",
		"[stale, 1 counterexample(s)]",
		"re-induced",
		"rule base already all-valid; nothing to re-induce",
		"delete SUBMARINE: 0 inserted, 1 deleted",
		"update CLASS: 1 inserted, 1 deleted",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestShellMutateError(t *testing.T) {
	out := run(t, `INSERT INTO NOPE VALUES (1)`, `DELETE FROM`)
	if strings.Count(out, "error:") != 2 {
		t.Errorf("output = %q", out)
	}
}

func TestShellStatusAndCheckpoint(t *testing.T) {
	// Non-durable: .status says in-memory, .checkpoint errors.
	out := run(t, ".status", ".checkpoint")
	if !strings.Contains(out, "in-memory: no write-ahead log") {
		t.Errorf("status output = %q", out)
	}
	if !strings.Contains(out, "error:") {
		t.Errorf("checkpoint on in-memory system must error: %q", out)
	}

	// Durable: mutate grows the WAL, .checkpoint truncates it.
	sh, buf, _ := durableShell(t)
	for _, line := range []string{
		`INSERT INTO SONAR VALUES ('TST-20', 'Shell')`,
		".status",
		".checkpoint",
		".status",
	} {
		sh.Exec(line)
	}
	s := buf.String()
	if !strings.Contains(s, "durable:") {
		t.Errorf("durable status missing: %q", s)
	}
	if !strings.Contains(s, "checkpointed: database saved, write-ahead log truncated") {
		t.Errorf("checkpoint output missing: %q", s)
	}
	if !strings.Contains(s, "durable: 0 bytes in the write-ahead log") {
		t.Errorf("post-checkpoint status should show an empty WAL: %q", s)
	}
}

func TestShellModes(t *testing.T) {
	const q = `SELECT SUBMARINE.ID FROM SUBMARINE, CLASS
		WHERE SUBMARINE.CLASS = CLASS.CLASS AND CLASS.DISPLACEMENT > 8000`
	out := run(t, ".induce 3", ".mode extensional", q)
	if strings.Contains(out, "intensional answer:") || !strings.Contains(out, "extensional answer (2 tuples)") {
		t.Errorf("extensional mode output = %q", out)
	}
	out = run(t, ".induce 3", ".mode intensional", q)
	if strings.Contains(out, "extensional answer") || !strings.Contains(out, "intensional answer:") {
		t.Errorf("intensional mode output = %q", out)
	}
	// Every documented mode is accepted.
	for _, m := range shell.Modes() {
		if out := run(t, ".mode "+m); !strings.Contains(out, "mode set to "+m) {
			t.Errorf("mode %s rejected: %q", m, out)
		}
	}
}

// TestHelpMatchesCommandTable pins .help to the shared table: every
// command row appears, including the server-era modes and the write
// path commands the old hand-written help screen omitted.
func TestHelpMatchesCommandTable(t *testing.T) {
	out := run(t, ".help")
	for _, c := range shell.Commands() {
		if !strings.Contains(out, c.Name) || !strings.Contains(out, c.Summary) {
			t.Errorf("help missing command %s (%s)", c.Name, c.Summary)
		}
	}
	for _, m := range shell.Modes() {
		if !strings.Contains(out, m) {
			t.Errorf("help does not document mode %q", m)
		}
	}
	// Dispatcher coverage: every dot-command in the table is handled
	// (an unhandled one would print "unknown command").
	for _, c := range shell.Commands() {
		if !strings.HasPrefix(c.Name, ".") || c.Name == ".quit" {
			continue
		}
		if out := run(t, c.Name); strings.Contains(out, "unknown command") {
			t.Errorf("documented command %s is not dispatched", c.Name)
		}
	}
}
