package shell_test

import (
	"os"
	"strings"
	"testing"

	"intensional/internal/shell"
)

// TestReadmeDocumentsCommandTable guards README.md against drifting
// from the shell: every command in the shared table and every query
// mode must be mentioned. The help screen is rendered from the same
// table (TestHelpMatchesCommandTable), so shell, help, and README stay
// in lockstep — adding a command without documenting it fails here.
func TestReadmeDocumentsCommandTable(t *testing.T) {
	b, err := os.ReadFile("../../README.md")
	if err != nil {
		t.Fatalf("README.md: %v", err)
	}
	readme := string(b)
	for _, c := range shell.Commands() {
		if !strings.Contains(readme, c.Name) {
			t.Errorf("README.md does not document shell command %q (%s)", c.Name, c.Summary)
		}
	}
	for _, m := range shell.Modes() {
		if !strings.Contains(readme, "`"+m+"`") {
			t.Errorf("README.md does not document query mode %q", m)
		}
	}
}
