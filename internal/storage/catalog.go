// Package storage provides the named-relation catalog and on-disk
// persistence for databases and their associated rule relations. A
// database and its rules save and load together, so induced knowledge
// relocates with the data as Section 5.2.2 of the paper requires.
package storage

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"intensional/internal/relation"
)

// Catalog is a concurrency-safe registry of named relations — the role
// INGRES's system catalog played for the original prototype. The RWMutex
// covers the registry itself (Get/Put/Create/Drop/Has/Names/Len/Clone
// may be called from any number of goroutines); it does not cover the
// contents of the relations it hands out. Relations support concurrent
// readers but require exclusive access to mutate — the contract the
// parallel induction pipeline relies on when workers share catalog
// relations as read-only sources.
type Catalog struct {
	mu   sync.RWMutex
	rels map[string]*relation.Relation // guarded by mu
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{rels: make(map[string]*relation.Relation)}
}

// key normalises relation names case-insensitively, as QUEL did.
func key(name string) string { return strings.ToLower(name) }

// Create registers an empty relation with the given schema. It fails if a
// relation of that name already exists.
func (c *Catalog) Create(name string, schema *relation.Schema) (*relation.Relation, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, exists := c.rels[key(name)]; exists {
		return nil, fmt.Errorf("storage: relation %q already exists", name)
	}
	r := relation.New(name, schema)
	c.rels[key(name)] = r
	return r, nil
}

// Put registers (or replaces) a relation under its own name.
func (c *Catalog) Put(r *relation.Relation) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.rels[key(r.Name())] = r
}

// Get returns the named relation.
func (c *Catalog) Get(name string) (*relation.Relation, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	r, ok := c.rels[key(name)]
	if !ok {
		return nil, fmt.Errorf("storage: no relation %q", name)
	}
	return r, nil
}

// Has reports whether the named relation exists.
func (c *Catalog) Has(name string) bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	_, ok := c.rels[key(name)]
	return ok
}

// Drop removes the named relation.
func (c *Catalog) Drop(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.rels[key(name)]; !ok {
		return fmt.Errorf("storage: no relation %q", name)
	}
	delete(c.rels, key(name))
	return nil
}

// Names returns the sorted names of all relations (their declared names,
// not the normalised keys).
func (c *Catalog) Names() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	names := make([]string, 0, len(c.rels))
	for _, r := range c.rels {
		names = append(names, r.Name())
	}
	sort.Strings(names)
	return names
}

// Len returns the number of relations in the catalog.
func (c *Catalog) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.rels)
}

// Clone returns a deep copy of the catalog.
func (c *Catalog) Clone() *Catalog {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := NewCatalog()
	for k, r := range c.rels {
		out.rels[k] = r.Clone()
	}
	return out
}

// ShallowClone returns a new catalog sharing the relation pointers. The
// copy-on-write mutation path uses it: the mutated relation is
// deep-cloned and Put back into the shallow clone, so every other
// relation (and any snapshot holding the original catalog) is untouched.
func (c *Catalog) ShallowClone() *Catalog {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := NewCatalog()
	for k, r := range c.rels {
		out.rels[k] = r
	}
	return out
}
