package storage

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"strings"

	"intensional/internal/fault"
	"intensional/internal/relation"
)

// manifest is the on-disk index of a saved database directory.
type manifest struct {
	Relations []relationMeta `json:"relations"`
}

type relationMeta struct {
	Name    string       `json:"name"`
	File    string       `json:"file"`
	Columns []columnMeta `json:"columns"`
}

type columnMeta struct {
	Name string `json:"name"`
	Type string `json:"type"`
}

const manifestFile = "manifest.json"

func typeName(t relation.Type) string {
	return t.String()
}

func typeFromName(s string) (relation.Type, error) {
	switch s {
	case "string":
		return relation.TString, nil
	case "int":
		return relation.TInt, nil
	case "float":
		return relation.TFloat, nil
	default:
		return 0, fmt.Errorf("storage: unknown column type %q", s)
	}
}

// fileFor maps a relation name to a stable, filesystem-safe CSV filename.
// Names that are already plain lowercase alphanumerics map to themselves;
// any name that needed sanitising is suffixed with a short hash of the
// original, so distinct names such as SHIP_CLASS and SHIP-CLASS (both
// sanitising to "ship_class") get distinct files instead of silently
// overwriting each other on Save.
func fileFor(name string) string {
	var b strings.Builder
	sanitised := false
	for _, r := range strings.ToLower(name) {
		if r >= 'a' && r <= 'z' || r >= '0' && r <= '9' {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
			sanitised = true
		}
	}
	if sanitised || b.Len() == 0 {
		h := fnv.New32a()
		h.Write([]byte(name))
		fmt.Fprintf(&b, "_%08x", h.Sum32())
	}
	return b.String() + ".csv"
}

// Save writes every relation in the catalog to dir as CSV files plus a
// manifest recording schemas. The write is atomic at the directory
// level: contents are built in a temporary sibling directory and swapped
// into place, so a crash or error mid-save never leaves dir corrupt — a
// previously saved database there stays loadable. Because rule relations
// live in the same catalog as the data, a single Save relocates the
// database together with its induced knowledge.
func (c *Catalog) Save(dir string) error {
	return c.SaveFS(fault.OS, dir)
}

// SaveFS is Save through an explicit filesystem — the fault-injection
// seam. Tests pass a fault.Injector to fail individual operations of
// the save protocol.
func (c *Catalog) SaveFS(fsys fault.FS, dir string) error {
	return WriteAtomicFS(fsys, dir, func(tmp string) error {
		return c.WriteIntoFS(fsys, tmp)
	})
}

// WriteAtomic replaces dir with the contents fill writes, atomically:
// fill receives a fresh temporary directory next to dir, and only after
// it returns successfully is the finished tree renamed into place. If
// fill (or the process) dies midway, dir is untouched. When dir already
// exists it is moved aside before the swap and removed after, so a crash
// in the narrow window between the two renames leaves the old data
// recoverable under a ".old" sibling rather than destroyed. After the
// final rename the parent directory is fsynced: rename(2) alone only
// orders the metadata in memory, so without the parent sync a power cut
// after "save succeeded" could still resurface the old directory.
func WriteAtomic(dir string, fill func(tmp string) error) error {
	return WriteAtomicFS(fault.OS, dir, fill)
}

// WriteAtomicFS is WriteAtomic through an explicit filesystem.
func WriteAtomicFS(fsys fault.FS, dir string, fill func(tmp string) error) (err error) {
	dir = filepath.Clean(dir)
	parent := filepath.Dir(dir)
	if mkErr := fsys.MkdirAll(parent, 0o755); mkErr != nil {
		return fmt.Errorf("storage: save: %w", mkErr)
	}
	tmp, tmpErr := fsys.MkdirTemp(parent, filepath.Base(dir)+".tmp")
	if tmpErr != nil {
		return fmt.Errorf("storage: save: %w", tmpErr)
	}
	// Cleanup on every path; after a successful swap tmp no longer
	// exists and RemoveAll is a no-op.
	defer func() {
		if rmErr := fsys.RemoveAll(tmp); rmErr != nil && err == nil {
			err = fmt.Errorf("storage: save: %w", rmErr)
		}
	}()
	if fillErr := fill(tmp); fillErr != nil {
		return fillErr
	}
	old := dir + ".old"
	hadOld := false
	if _, statErr := os.Stat(dir); statErr == nil {
		// A leftover .old from an older interrupted swap is disposable:
		// dir itself is the current complete generation.
		if _, statErr := os.Stat(old); statErr == nil {
			if rmErr := fsys.RemoveAll(old); rmErr != nil {
				return fmt.Errorf("storage: save: %w", rmErr)
			}
		}
		if mvErr := fsys.Rename(dir, old); mvErr != nil {
			return fmt.Errorf("storage: save: %w", mvErr)
		}
		hadOld = true
	}
	if mvErr := fsys.Rename(tmp, dir); mvErr != nil {
		if hadOld {
			if rerr := fsys.Rename(old, dir); rerr != nil {
				return fmt.Errorf("storage: save: %v (restoring previous directory also failed: %w)", mvErr, rerr)
			}
		}
		return fmt.Errorf("storage: save: %w", mvErr)
	}
	// Make both renames durable before declaring success (and before
	// destroying the .old fallback): the swap is one set of entries in
	// the parent directory, and only its fsync pins them across a power
	// cut.
	if syncErr := fsys.SyncDir(parent); syncErr != nil {
		return fmt.Errorf("storage: save: sync parent dir: %w", syncErr)
	}
	if hadOld {
		if rmErr := fsys.RemoveAll(old); rmErr != nil {
			return fmt.Errorf("storage: save: %w", rmErr)
		}
	}
	return nil
}

// RecoverAtomic repairs the aftermath of a crash inside WriteAtomic's
// swap window. When dir lacks a complete generation (no manifest) but
// the ".old" sibling from an interrupted swap holds one, the old
// generation is renamed back into place; when dir is complete, stale
// ".old" and ".tmp*" siblings are deleted. Idempotent and a no-op on a
// healthy directory; callers run it before Load.
func RecoverAtomic(dir string) error { return RecoverAtomicFS(fault.OS, dir) }

// RecoverAtomicFS is RecoverAtomic through an explicit filesystem.
func RecoverAtomicFS(fsys fault.FS, dir string) error {
	dir = filepath.Clean(dir)
	old := dir + ".old"
	// Leftover temporaries from interrupted fills are never the good
	// generation — a temporary only becomes one by being renamed to dir.
	tmps, globErr := filepath.Glob(dir + ".tmp*")
	if globErr != nil {
		return fmt.Errorf("storage: recover: %w", globErr)
	}
	for _, tmp := range tmps {
		if rmErr := fsys.RemoveAll(tmp); rmErr != nil {
			return fmt.Errorf("storage: recover: %w", rmErr)
		}
	}
	if _, statErr := os.Stat(filepath.Join(dir, manifestFile)); statErr == nil {
		// dir is complete; a surviving .old is from a swap that finished
		// its second rename but died before the cleanup.
		if _, statErr := os.Stat(old); statErr == nil {
			if rmErr := fsys.RemoveAll(old); rmErr != nil {
				return fmt.Errorf("storage: recover: %w", rmErr)
			}
		}
		return nil
	}
	if _, statErr := os.Stat(filepath.Join(old, manifestFile)); statErr != nil {
		return nil // nothing to restore from; Load will report dir's state
	}
	// The swap died between its renames: .old holds the only complete
	// generation. Put it back.
	if _, statErr := os.Stat(dir); statErr == nil {
		if rmErr := fsys.RemoveAll(dir); rmErr != nil {
			return fmt.Errorf("storage: recover: %w", rmErr)
		}
	}
	if mvErr := fsys.Rename(old, dir); mvErr != nil {
		return fmt.Errorf("storage: recover: %w", mvErr)
	}
	// Make the restore itself durable: without the parent sync a second
	// crash could undo the recovery it just reported as done.
	if err := fsys.SyncDir(filepath.Dir(dir)); err != nil {
		return fmt.Errorf("storage: recover: %w", err)
	}
	return nil
}

// WriteInto writes the catalog's manifest and CSVs directly into dir
// (created if needed), without the atomic swap. Most callers want Save;
// WriteInto exists for composing larger atomic units — core.System.Save
// adds the dictionary declarations to the same temporary directory
// before the swap, so the whole database directory replaces atomically.
func (c *Catalog) WriteInto(dir string) error {
	return c.WriteIntoFS(fault.OS, dir)
}

// WriteIntoFS is WriteInto through an explicit filesystem.
func (c *Catalog) WriteIntoFS(fsys fault.FS, dir string) error {
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("storage: save: %w", err)
	}
	var m manifest
	usedBy := make(map[string]string) // target file → relation name
	for _, name := range c.Names() {
		r, err := c.Get(name)
		if err != nil {
			return err
		}
		meta := relationMeta{Name: r.Name(), File: fileFor(r.Name())}
		if prev, dup := usedBy[meta.File]; dup {
			return fmt.Errorf("storage: save: relations %q and %q both map to file %s",
				prev, r.Name(), meta.File)
		}
		usedBy[meta.File] = r.Name()
		for _, col := range r.Schema().Columns() {
			meta.Columns = append(meta.Columns, columnMeta{Name: col.Name, Type: typeName(col.Type)})
		}
		if err := saveCSV(fsys, filepath.Join(dir, meta.File), r); err != nil {
			return err
		}
		m.Relations = append(m.Relations, meta)
	}
	data, err := json.MarshalIndent(&m, "", "  ")
	if err != nil {
		return fmt.Errorf("storage: save manifest: %w", err)
	}
	if err := writeFileSync(fsys, filepath.Join(dir, manifestFile), data); err != nil {
		return fmt.Errorf("storage: save manifest: %w", err)
	}
	// Every file's bytes are fsynced; sync the directory so the entries
	// pointing at them are durable too.
	if err := fsys.SyncDir(dir); err != nil {
		return fmt.Errorf("storage: save: %w", err)
	}
	return nil
}

// writeFileSync writes data to a new file and fsyncs it before close,
// so a success return means the contents survive a crash. The entry
// itself still needs a directory sync, which callers own.
func writeFileSync(fsys fault.FS, path string, data []byte) (err error) {
	f, err := fsys.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	if _, err := f.Write(data); err != nil {
		return err
	}
	return f.Sync()
}

// Load reads a database directory written by Save into a new catalog.
func Load(dir string) (*Catalog, error) {
	data, err := os.ReadFile(filepath.Join(dir, manifestFile))
	if err != nil {
		return nil, fmt.Errorf("storage: load: %w", err)
	}
	var m manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("storage: load manifest: %w", err)
	}
	c := NewCatalog()
	for _, meta := range m.Relations {
		cols := make([]relation.Column, len(meta.Columns))
		for i, cm := range meta.Columns {
			t, err := typeFromName(cm.Type)
			if err != nil {
				return nil, fmt.Errorf("storage: relation %s: %w", meta.Name, err)
			}
			cols[i] = relation.Column{Name: cm.Name, Type: t}
		}
		schema, err := relation.NewSchema(cols...)
		if err != nil {
			return nil, fmt.Errorf("storage: relation %s: %w", meta.Name, err)
		}
		r, err := loadCSV(filepath.Join(dir, meta.File), meta.Name, schema)
		if err != nil {
			return nil, err
		}
		c.Put(r)
	}
	return c, nil
}

// nullSentinel marks SQL NULL in CSV cells; a literal string of this form
// is escaped by prefixing a backslash.
const nullSentinel = `\N`

func saveCSV(fsys fault.FS, path string, r *relation.Relation) (err error) {
	f, err := fsys.Create(path)
	if err != nil {
		return fmt.Errorf("storage: save %s: %w", r.Name(), err)
	}
	// Close exactly once, on every path; a failed close loses buffered
	// writes, so it surfaces unless an earlier error already did.
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("storage: save %s: %w", r.Name(), cerr)
		}
	}()
	w := csv.NewWriter(f)
	if err := w.Write(r.Schema().Names()); err != nil {
		return fmt.Errorf("storage: save %s: %w", r.Name(), err)
	}
	rec := make([]string, r.Schema().Len())
	for _, t := range r.Rows() {
		for i, v := range t {
			switch {
			case v.IsNull():
				rec[i] = nullSentinel
			case v.Kind() == relation.KindString && strings.HasPrefix(v.Str(), `\`):
				rec[i] = `\` + v.Str()
			default:
				rec[i] = v.String()
			}
		}
		if err := w.Write(rec); err != nil {
			return fmt.Errorf("storage: save %s: %w", r.Name(), err)
		}
	}
	w.Flush()
	if err := w.Error(); err != nil {
		return fmt.Errorf("storage: save %s: %w", r.Name(), err)
	}
	// Success means the rows are durable, not merely buffered in the
	// page cache: a crash after "saved" must not lose them.
	if err := f.Sync(); err != nil {
		return fmt.Errorf("storage: save %s: %w", r.Name(), err)
	}
	return nil
}

func loadCSV(path, name string, schema *relation.Schema) (*relation.Relation, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("storage: load %s: %w", name, err)
	}
	rd := csv.NewReader(f)
	records, err := rd.ReadAll()
	// The file is fully consumed by ReadAll; close before decoding and
	// report the first failure.
	cerr := f.Close()
	if err != nil {
		return nil, fmt.Errorf("storage: load %s: %w", name, err)
	}
	if cerr != nil {
		return nil, fmt.Errorf("storage: load %s: %w", name, cerr)
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("storage: load %s: missing header", name)
	}
	header := records[0]
	if len(header) != schema.Len() {
		return nil, fmt.Errorf("storage: load %s: header has %d columns, manifest %d",
			name, len(header), schema.Len())
	}
	r := relation.New(name, schema)
	for rowNo, rec := range records[1:] {
		t := make(relation.Tuple, len(rec))
		for i, cell := range rec {
			switch {
			case cell == nullSentinel:
				t[i] = relation.Null()
			case strings.HasPrefix(cell, `\`) && schema.Col(i).Type == relation.TString:
				t[i] = relation.String(cell[1:])
			default:
				v, err := relation.ParseValue(cell, schema.Col(i).Type)
				if err != nil {
					return nil, fmt.Errorf("storage: load %s row %d: %w", name, rowNo+1, err)
				}
				t[i] = v
			}
		}
		if err := r.Insert(t); err != nil {
			return nil, fmt.Errorf("storage: load %s row %d: %w", name, rowNo+1, err)
		}
	}
	return r, nil
}
