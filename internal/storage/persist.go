package storage

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"strings"

	"intensional/internal/relation"
)

// manifest is the on-disk index of a saved database directory.
type manifest struct {
	Relations []relationMeta `json:"relations"`
}

type relationMeta struct {
	Name    string       `json:"name"`
	File    string       `json:"file"`
	Columns []columnMeta `json:"columns"`
}

type columnMeta struct {
	Name string `json:"name"`
	Type string `json:"type"`
}

const manifestFile = "manifest.json"

func typeName(t relation.Type) string {
	return t.String()
}

func typeFromName(s string) (relation.Type, error) {
	switch s {
	case "string":
		return relation.TString, nil
	case "int":
		return relation.TInt, nil
	case "float":
		return relation.TFloat, nil
	default:
		return 0, fmt.Errorf("storage: unknown column type %q", s)
	}
}

// fileFor maps a relation name to a stable, filesystem-safe CSV filename.
// Names that are already plain lowercase alphanumerics map to themselves;
// any name that needed sanitising is suffixed with a short hash of the
// original, so distinct names such as SHIP_CLASS and SHIP-CLASS (both
// sanitising to "ship_class") get distinct files instead of silently
// overwriting each other on Save.
func fileFor(name string) string {
	var b strings.Builder
	sanitised := false
	for _, r := range strings.ToLower(name) {
		if r >= 'a' && r <= 'z' || r >= '0' && r <= '9' {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
			sanitised = true
		}
	}
	if sanitised || b.Len() == 0 {
		h := fnv.New32a()
		h.Write([]byte(name))
		fmt.Fprintf(&b, "_%08x", h.Sum32())
	}
	return b.String() + ".csv"
}

// saveHook, when non-nil, runs before each relation's CSV is written; a
// returned error aborts the save. Tests use it to inject mid-save
// failures and assert the previously saved directory survives.
var saveHook func(relName string) error

// Save writes every relation in the catalog to dir as CSV files plus a
// manifest recording schemas. The write is atomic at the directory
// level: contents are built in a temporary sibling directory and swapped
// into place, so a crash or error mid-save never leaves dir corrupt — a
// previously saved database there stays loadable. Because rule relations
// live in the same catalog as the data, a single Save relocates the
// database together with its induced knowledge.
func (c *Catalog) Save(dir string) error {
	return WriteAtomic(dir, c.WriteInto)
}

// WriteAtomic replaces dir with the contents fill writes, atomically:
// fill receives a fresh temporary directory next to dir, and only after
// it returns successfully is the finished tree renamed into place. If
// fill (or the process) dies midway, dir is untouched. When dir already
// exists it is moved aside before the swap and removed after, so a crash
// in the narrow window between the two renames leaves the old data
// recoverable under a ".old" sibling rather than destroyed.
func WriteAtomic(dir string, fill func(tmp string) error) (err error) {
	dir = filepath.Clean(dir)
	parent := filepath.Dir(dir)
	if mkErr := os.MkdirAll(parent, 0o755); mkErr != nil {
		return fmt.Errorf("storage: save: %w", mkErr)
	}
	tmp, tmpErr := os.MkdirTemp(parent, filepath.Base(dir)+".tmp")
	if tmpErr != nil {
		return fmt.Errorf("storage: save: %w", tmpErr)
	}
	// Cleanup on every path; after a successful swap tmp no longer
	// exists and RemoveAll is a no-op.
	defer func() {
		if rmErr := os.RemoveAll(tmp); rmErr != nil && err == nil {
			err = fmt.Errorf("storage: save: %w", rmErr)
		}
	}()
	if fillErr := fill(tmp); fillErr != nil {
		return fillErr
	}
	old := tmp + ".old"
	hadOld := false
	if _, statErr := os.Stat(dir); statErr == nil {
		if mvErr := os.Rename(dir, old); mvErr != nil {
			return fmt.Errorf("storage: save: %w", mvErr)
		}
		hadOld = true
	}
	if mvErr := os.Rename(tmp, dir); mvErr != nil {
		if hadOld {
			if rerr := os.Rename(old, dir); rerr != nil {
				return fmt.Errorf("storage: save: %v (restoring previous directory also failed: %w)", mvErr, rerr)
			}
		}
		return fmt.Errorf("storage: save: %w", mvErr)
	}
	if hadOld {
		if rmErr := os.RemoveAll(old); rmErr != nil {
			return fmt.Errorf("storage: save: %w", rmErr)
		}
	}
	return nil
}

// WriteInto writes the catalog's manifest and CSVs directly into dir
// (created if needed), without the atomic swap. Most callers want Save;
// WriteInto exists for composing larger atomic units — core.System.Save
// adds the dictionary declarations to the same temporary directory
// before the swap, so the whole database directory replaces atomically.
func (c *Catalog) WriteInto(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("storage: save: %w", err)
	}
	var m manifest
	usedBy := make(map[string]string) // target file → relation name
	for _, name := range c.Names() {
		r, err := c.Get(name)
		if err != nil {
			return err
		}
		meta := relationMeta{Name: r.Name(), File: fileFor(r.Name())}
		if prev, dup := usedBy[meta.File]; dup {
			return fmt.Errorf("storage: save: relations %q and %q both map to file %s",
				prev, r.Name(), meta.File)
		}
		usedBy[meta.File] = r.Name()
		for _, col := range r.Schema().Columns() {
			meta.Columns = append(meta.Columns, columnMeta{Name: col.Name, Type: typeName(col.Type)})
		}
		if saveHook != nil {
			if err := saveHook(r.Name()); err != nil {
				return err
			}
		}
		if err := saveCSV(filepath.Join(dir, meta.File), r); err != nil {
			return err
		}
		m.Relations = append(m.Relations, meta)
	}
	data, err := json.MarshalIndent(&m, "", "  ")
	if err != nil {
		return fmt.Errorf("storage: save manifest: %w", err)
	}
	if err := os.WriteFile(filepath.Join(dir, manifestFile), data, 0o644); err != nil {
		return fmt.Errorf("storage: save manifest: %w", err)
	}
	return nil
}

// Load reads a database directory written by Save into a new catalog.
func Load(dir string) (*Catalog, error) {
	data, err := os.ReadFile(filepath.Join(dir, manifestFile))
	if err != nil {
		return nil, fmt.Errorf("storage: load: %w", err)
	}
	var m manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("storage: load manifest: %w", err)
	}
	c := NewCatalog()
	for _, meta := range m.Relations {
		cols := make([]relation.Column, len(meta.Columns))
		for i, cm := range meta.Columns {
			t, err := typeFromName(cm.Type)
			if err != nil {
				return nil, fmt.Errorf("storage: relation %s: %w", meta.Name, err)
			}
			cols[i] = relation.Column{Name: cm.Name, Type: t}
		}
		schema, err := relation.NewSchema(cols...)
		if err != nil {
			return nil, fmt.Errorf("storage: relation %s: %w", meta.Name, err)
		}
		r, err := loadCSV(filepath.Join(dir, meta.File), meta.Name, schema)
		if err != nil {
			return nil, err
		}
		c.Put(r)
	}
	return c, nil
}

// nullSentinel marks SQL NULL in CSV cells; a literal string of this form
// is escaped by prefixing a backslash.
const nullSentinel = `\N`

func saveCSV(path string, r *relation.Relation) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("storage: save %s: %w", r.Name(), err)
	}
	// Close exactly once, on every path; a failed close loses buffered
	// writes, so it surfaces unless an earlier error already did.
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("storage: save %s: %w", r.Name(), cerr)
		}
	}()
	w := csv.NewWriter(f)
	if err := w.Write(r.Schema().Names()); err != nil {
		return fmt.Errorf("storage: save %s: %w", r.Name(), err)
	}
	rec := make([]string, r.Schema().Len())
	for _, t := range r.Rows() {
		for i, v := range t {
			switch {
			case v.IsNull():
				rec[i] = nullSentinel
			case v.Kind() == relation.KindString && strings.HasPrefix(v.Str(), `\`):
				rec[i] = `\` + v.Str()
			default:
				rec[i] = v.String()
			}
		}
		if err := w.Write(rec); err != nil {
			return fmt.Errorf("storage: save %s: %w", r.Name(), err)
		}
	}
	w.Flush()
	if err := w.Error(); err != nil {
		return fmt.Errorf("storage: save %s: %w", r.Name(), err)
	}
	return nil
}

func loadCSV(path, name string, schema *relation.Schema) (*relation.Relation, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("storage: load %s: %w", name, err)
	}
	rd := csv.NewReader(f)
	records, err := rd.ReadAll()
	// The file is fully consumed by ReadAll; close before decoding and
	// report the first failure.
	cerr := f.Close()
	if err != nil {
		return nil, fmt.Errorf("storage: load %s: %w", name, err)
	}
	if cerr != nil {
		return nil, fmt.Errorf("storage: load %s: %w", name, cerr)
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("storage: load %s: missing header", name)
	}
	header := records[0]
	if len(header) != schema.Len() {
		return nil, fmt.Errorf("storage: load %s: header has %d columns, manifest %d",
			name, len(header), schema.Len())
	}
	r := relation.New(name, schema)
	for rowNo, rec := range records[1:] {
		t := make(relation.Tuple, len(rec))
		for i, cell := range rec {
			switch {
			case cell == nullSentinel:
				t[i] = relation.Null()
			case strings.HasPrefix(cell, `\`) && schema.Col(i).Type == relation.TString:
				t[i] = relation.String(cell[1:])
			default:
				v, err := relation.ParseValue(cell, schema.Col(i).Type)
				if err != nil {
					return nil, fmt.Errorf("storage: load %s row %d: %w", name, rowNo+1, err)
				}
				t[i] = v
			}
		}
		if err := r.Insert(t); err != nil {
			return nil, fmt.Errorf("storage: load %s row %d: %w", name, rowNo+1, err)
		}
	}
	return r, nil
}
