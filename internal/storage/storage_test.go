package storage

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"intensional/internal/relation"
)

func sampleCatalog(t *testing.T) *Catalog {
	t.Helper()
	c := NewCatalog()
	s := relation.MustSchema(
		relation.Column{Name: "Class", Type: relation.TString},
		relation.Column{Name: "Displacement", Type: relation.TInt},
		relation.Column{Name: "Ratio", Type: relation.TFloat},
	)
	r, err := c.Create("CLASS", s)
	if err != nil {
		t.Fatal(err)
	}
	r.MustInsert(relation.String("0101"), relation.Int(16600), relation.Float(1.5))
	r.MustInsert(relation.String("0102"), relation.Int(7250), relation.Float(0.25))
	r.MustInsert(relation.Null(), relation.Null(), relation.Null())
	r.MustInsert(relation.String(`\N`), relation.Int(1), relation.Float(0)) // literal backslash-N
	return c
}

func TestCatalogCRUD(t *testing.T) {
	c := sampleCatalog(t)
	if !c.Has("class") {
		t.Error("Has should be case-insensitive")
	}
	if _, err := c.Get("CLASS"); err != nil {
		t.Error(err)
	}
	if _, err := c.Get("missing"); err == nil {
		t.Error("Get missing should error")
	}
	if _, err := c.Create("class", relation.MustSchema(relation.Column{Name: "X"})); err == nil {
		t.Error("Create duplicate (case-insensitive) should error")
	}
	if got := c.Names(); len(got) != 1 || got[0] != "CLASS" {
		t.Errorf("Names = %v", got)
	}
	if err := c.Drop("Class"); err != nil {
		t.Error(err)
	}
	if err := c.Drop("Class"); err == nil {
		t.Error("double Drop should error")
	}
	if c.Len() != 0 {
		t.Errorf("Len = %d, want 0", c.Len())
	}
}

func TestCatalogCloneIndependence(t *testing.T) {
	c := sampleCatalog(t)
	cl := c.Clone()
	r, _ := cl.Get("CLASS")
	r.Delete(func(relation.Tuple) bool { return true })
	orig, _ := c.Get("CLASS")
	if orig.Len() == 0 {
		t.Error("Clone must not share row storage")
	}
}

func TestSaveLoadRoundtrip(t *testing.T) {
	dir := t.TempDir()
	c := sampleCatalog(t)
	if err := c.Save(dir); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	orig, _ := c.Get("CLASS")
	got, err := loaded.Get("CLASS")
	if err != nil {
		t.Fatal(err)
	}
	if !got.Schema().Equal(orig.Schema()) {
		t.Fatalf("schema mismatch: %s vs %s", got.Schema(), orig.Schema())
	}
	if got.Len() != orig.Len() {
		t.Fatalf("row count %d, want %d", got.Len(), orig.Len())
	}
	for i := range orig.Rows() {
		for j := range orig.Row(i) {
			a, b := orig.Row(i)[j], got.Row(i)[j]
			if a.IsNull() != b.IsNull() || (!a.IsNull() && !a.Equal(b)) {
				t.Errorf("row %d col %d: %#v != %#v", i, j, a, b)
			}
		}
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := Load(t.TempDir()); err == nil {
		t.Error("Load of empty dir should error (no manifest)")
	}
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, manifestFile), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(dir); err == nil {
		t.Error("Load of corrupt manifest should error")
	}
}

func TestLoadBadCell(t *testing.T) {
	dir := t.TempDir()
	man := `{"relations":[{"name":"R","file":"r.csv","columns":[{"name":"N","type":"int"}]}]}`
	if err := os.WriteFile(filepath.Join(dir, manifestFile), []byte(man), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "r.csv"), []byte("N\nnot-a-number\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(dir); err == nil {
		t.Error("Load with unparseable cell should error")
	}
}

func TestLoadUnknownType(t *testing.T) {
	dir := t.TempDir()
	man := `{"relations":[{"name":"R","file":"r.csv","columns":[{"name":"N","type":"blob"}]}]}`
	if err := os.WriteFile(filepath.Join(dir, manifestFile), []byte(man), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(dir); err == nil {
		t.Error("Load with unknown column type should error")
	}
}

// TestCatalogConcurrentAccess stresses the catalog's locking: concurrent
// creators, readers, and droppers must not race (validated under
// go test -race).
func TestCatalogConcurrentAccess(t *testing.T) {
	c := NewCatalog()
	schema := relation.MustSchema(relation.Column{Name: "A", Type: relation.TInt})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				name := fmt.Sprintf("rel_%d_%d", w, i)
				if _, err := c.Create(name, schema); err != nil {
					t.Errorf("create %s: %v", name, err)
					return
				}
				if _, err := c.Get(name); err != nil {
					t.Errorf("get %s: %v", name, err)
					return
				}
				_ = c.Names()
				_ = c.Len()
				if i%3 == 0 {
					if err := c.Drop(name); err != nil {
						t.Errorf("drop %s: %v", name, err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	// Each worker dropped 17 of its 50 relations.
	if got := c.Len(); got != 8*(50-17) {
		t.Errorf("final catalog size = %d, want %d", got, 8*(50-17))
	}
}

func TestFileForSanitises(t *testing.T) {
	// Plain alphanumeric names keep their historical stable filename.
	if got := fileFor("CLASS"); got != "class.csv" {
		t.Errorf("fileFor(CLASS) = %q", got)
	}
	// Sanitised names carry a hash suffix disambiguating the original.
	got := fileFor("My Weird/Name⋈X")
	if !strings.HasPrefix(got, "my_weird_name_x_") || !strings.HasSuffix(got, ".csv") {
		t.Errorf("fileFor = %q, want my_weird_name_x_<hash>.csv", got)
	}
	if fileFor("SHIP_CLASS") == fileFor("SHIP-CLASS") {
		t.Error("names sanitising to the same stem must map to distinct files")
	}
	if fileFor("SHIP_CLASS") != fileFor("SHIP_CLASS") {
		t.Error("fileFor must be deterministic")
	}
}

// TestSaveCollidingNamesRoundtrip is the regression test for the silent
// CSV overwrite: SHIP_CLASS and SHIP-CLASS both sanitise to ship_class,
// and before hash disambiguation the second Save clobbered the first
// relation's file. Both must survive a Save/Load round trip.
func TestSaveCollidingNamesRoundtrip(t *testing.T) {
	dir := t.TempDir()
	c := NewCatalog()
	s := relation.MustSchema(relation.Column{Name: "V", Type: relation.TString})
	a, err := c.Create("SHIP_CLASS", s)
	if err != nil {
		t.Fatal(err)
	}
	a.MustInsert(relation.String("underscore"))
	b, err := c.Create("SHIP-CLASS", s)
	if err != nil {
		t.Fatal(err)
	}
	b.MustInsert(relation.String("dash"))

	if err := c.Save(dir); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	for name, want := range map[string]string{"SHIP_CLASS": "underscore", "SHIP-CLASS": "dash"} {
		r, err := loaded.Get(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if r.Len() != 1 || !r.Row(0)[0].Equal(relation.String(want)) {
			t.Errorf("%s round-tripped as %v, want [%s]", name, r.Rows(), want)
		}
	}
}
