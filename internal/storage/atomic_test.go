package storage

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"intensional/internal/relation"
)

// oneRelCatalog builds a catalog with a single STATUS relation holding
// the given marker value, so tests can tell apart database generations.
func oneRelCatalog(t *testing.T, marker string) *Catalog {
	t.Helper()
	c := NewCatalog()
	r, err := c.Create("STATUS", relation.MustSchema(
		relation.Column{Name: "Marker", Type: relation.TString},
	))
	if err != nil {
		t.Fatal(err)
	}
	r.MustInsert(relation.String(marker))
	return c
}

func loadMarker(t *testing.T, dir string) string {
	t.Helper()
	c, err := Load(dir)
	if err != nil {
		t.Fatalf("load after save: %v", err)
	}
	r, err := c.Get("STATUS")
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 1 {
		t.Fatalf("STATUS has %d rows", r.Len())
	}
	return r.Row(0)[0].Str()
}

// TestSaveMidFailureKeepsOldDatabase injects a failure partway through a
// re-save and asserts the previously saved database is still intact and
// loadable — the crash-safety contract of the atomic directory swap.
func TestSaveMidFailureKeepsOldDatabase(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "db")
	if err := oneRelCatalog(t, "v1").Save(dir); err != nil {
		t.Fatal(err)
	}

	next := oneRelCatalog(t, "v2")
	// A second relation so the failure strikes mid-save: CLASS sorts
	// before STATUS, so STATUS's write is the one that fails after CLASS
	// already landed in the temp directory.
	r, err := next.Create("CLASS", relation.MustSchema(
		relation.Column{Name: "Name", Type: relation.TString},
	))
	if err != nil {
		t.Fatal(err)
	}
	r.MustInsert(relation.String("0101"))

	boom := errors.New("disk full")
	saveHook = func(relName string) error {
		if relName == "STATUS" {
			return boom
		}
		return nil
	}
	defer func() { saveHook = nil }()

	if err := next.Save(dir); !errors.Is(err, boom) {
		t.Fatalf("Save error = %v, want injected failure", err)
	}
	if got := loadMarker(t, dir); got != "v1" {
		t.Fatalf("after failed re-save, marker = %q, want old database v1", got)
	}
	if _, err := os.Stat(filepath.Join(dir, "class.csv")); !os.IsNotExist(err) {
		t.Errorf("failed save leaked class.csv into the live directory (err=%v)", err)
	}
	assertNoDebris(t, filepath.Dir(dir))
}

// TestSaveReplacesExistingAtomically re-saves over an existing directory
// and checks the new generation fully replaces the old, with no stale
// files or temp directories left behind.
func TestSaveReplacesExistingAtomically(t *testing.T) {
	parent := t.TempDir()
	dir := filepath.Join(parent, "db")
	if err := sampleCatalog(t).Save(dir); err != nil {
		t.Fatal(err)
	}
	if err := oneRelCatalog(t, "v2").Save(dir); err != nil {
		t.Fatal(err)
	}
	c, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 1 || !c.Has("STATUS") {
		t.Fatalf("reloaded catalog = %v, want just STATUS", c.Names())
	}
	if _, err := os.Stat(filepath.Join(dir, "class.csv")); !os.IsNotExist(err) {
		t.Errorf("old generation's class.csv survived the swap (err=%v)", err)
	}
	assertNoDebris(t, parent)
}

// TestWriteAtomicFreshDirectory exercises the swap when no previous
// directory exists and when fill fails before writing anything durable.
func TestWriteAtomicFreshDirectory(t *testing.T) {
	parent := t.TempDir()
	dir := filepath.Join(parent, "fresh", "db")
	err := WriteAtomic(dir, func(tmp string) error {
		return os.WriteFile(filepath.Join(tmp, "x.txt"), []byte("ok"), 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "x.txt"))
	if err != nil || string(data) != "ok" {
		t.Fatalf("content = %q, %v", data, err)
	}

	boom := errors.New("boom")
	if err := WriteAtomic(dir, func(string) error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want fill failure", err)
	}
	if data, err := os.ReadFile(filepath.Join(dir, "x.txt")); err != nil || string(data) != "ok" {
		t.Fatalf("after failed rewrite, content = %q, %v", data, err)
	}
	assertNoDebris(t, filepath.Dir(dir))
}

// assertNoDebris fails if any temp or backup directory from the atomic
// swap is left next to the target.
func assertNoDebris(t *testing.T, parent string) {
	t.Helper()
	entries, err := os.ReadDir(parent)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp") || strings.HasSuffix(e.Name(), ".old") {
			t.Errorf("atomic save left debris %s in %s", e.Name(), parent)
		}
	}
}
