package storage

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"intensional/internal/fault"
	"intensional/internal/relation"
)

// oneRelCatalog builds a catalog with a single STATUS relation holding
// the given marker value, so tests can tell apart database generations.
func oneRelCatalog(t *testing.T, marker string) *Catalog {
	t.Helper()
	c := NewCatalog()
	r, err := c.Create("STATUS", relation.MustSchema(
		relation.Column{Name: "Marker", Type: relation.TString},
	))
	if err != nil {
		t.Fatal(err)
	}
	r.MustInsert(relation.String(marker))
	return c
}

func loadMarker(t *testing.T, dir string) string {
	t.Helper()
	c, err := Load(dir)
	if err != nil {
		t.Fatalf("load after save: %v", err)
	}
	r, err := c.Get("STATUS")
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 1 {
		t.Fatalf("STATUS has %d rows", r.Len())
	}
	return r.Row(0)[0].Str()
}

// TestSaveMidFailureKeepsOldDatabase injects a failure partway through a
// re-save and asserts the previously saved database is still intact and
// loadable — the crash-safety contract of the atomic directory swap.
func TestSaveMidFailureKeepsOldDatabase(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "db")
	if err := oneRelCatalog(t, "v1").Save(dir); err != nil {
		t.Fatal(err)
	}

	next := oneRelCatalog(t, "v2")
	// A second relation so the failure strikes mid-save: CLASS sorts
	// before STATUS, so STATUS's write is the one that fails after CLASS
	// already landed in the temp directory.
	r, err := next.Create("CLASS", relation.MustSchema(
		relation.Column{Name: "Name", Type: relation.TString},
	))
	if err != nil {
		t.Fatal(err)
	}
	r.MustInsert(relation.String("0101"))

	// Fail the creation of STATUS's CSV: CLASS has already landed in the
	// temp directory when the fault strikes.
	in := fault.NewInjector(fault.OS)
	in.FailOp(fault.OpCreate, "status.csv", 1, fault.ErrInjected)

	if err := next.SaveFS(in, dir); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("Save error = %v, want injected failure", err)
	}
	if got := loadMarker(t, dir); got != "v1" {
		t.Fatalf("after failed re-save, marker = %q, want old database v1", got)
	}
	if _, err := os.Stat(filepath.Join(dir, "class.csv")); !os.IsNotExist(err) {
		t.Errorf("failed save leaked class.csv into the live directory (err=%v)", err)
	}
	assertNoDebris(t, filepath.Dir(dir))
}

// TestSaveReplacesExistingAtomically re-saves over an existing directory
// and checks the new generation fully replaces the old, with no stale
// files or temp directories left behind.
func TestSaveReplacesExistingAtomically(t *testing.T) {
	parent := t.TempDir()
	dir := filepath.Join(parent, "db")
	if err := sampleCatalog(t).Save(dir); err != nil {
		t.Fatal(err)
	}
	if err := oneRelCatalog(t, "v2").Save(dir); err != nil {
		t.Fatal(err)
	}
	c, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 1 || !c.Has("STATUS") {
		t.Fatalf("reloaded catalog = %v, want just STATUS", c.Names())
	}
	if _, err := os.Stat(filepath.Join(dir, "class.csv")); !os.IsNotExist(err) {
		t.Errorf("old generation's class.csv survived the swap (err=%v)", err)
	}
	assertNoDebris(t, parent)
}

// TestWriteAtomicFreshDirectory exercises the swap when no previous
// directory exists and when fill fails before writing anything durable.
func TestWriteAtomicFreshDirectory(t *testing.T) {
	parent := t.TempDir()
	dir := filepath.Join(parent, "fresh", "db")
	err := WriteAtomic(dir, func(tmp string) error {
		return os.WriteFile(filepath.Join(tmp, "x.txt"), []byte("ok"), 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "x.txt"))
	if err != nil || string(data) != "ok" {
		t.Fatalf("content = %q, %v", data, err)
	}

	boom := errors.New("boom")
	if err := WriteAtomic(dir, func(string) error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want fill failure", err)
	}
	if data, err := os.ReadFile(filepath.Join(dir, "x.txt")); err != nil || string(data) != "ok" {
		t.Fatalf("after failed rewrite, content = %q, %v", data, err)
	}
	assertNoDebris(t, filepath.Dir(dir))
}

// TestSaveSyncsParentDirectory pins the rename-durability fix: a save
// is only complete once the parent directory holding the renamed entry
// has been fsynced, so WriteAtomic must issue exactly that sync — and a
// failing one must surface as a failed save, not be swallowed.
func TestSaveSyncsParentDirectory(t *testing.T) {
	parent := t.TempDir()
	dir := filepath.Join(parent, "db")

	in := fault.NewInjector(fault.OS)
	if err := oneRelCatalog(t, "v1").SaveFS(in, dir); err != nil {
		t.Fatal(err)
	}
	// Two directory syncs per save: the temp tree's own entries after
	// its files are written, and the parent after the rename commits.
	if got := in.Count(fault.OpSyncDir); got != 2 {
		t.Fatalf("successful save issued %d directory syncs, want 2", got)
	}

	// Occurrence 1 under parent is the temp tree's own entry sync (its
	// path is a substring match too); occurrence 2 is the post-rename
	// parent sync this test is about.
	in.FailOp(fault.OpSyncDir, parent, 2, fault.ErrInjected)
	err := oneRelCatalog(t, "v2").SaveFS(in, dir)
	if !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("Save with failing parent-dir fsync = %v, want the injected error surfaced", err)
	}
	// The swap had happened before the sync failed; whichever generation
	// is visible, the directory must stay loadable and the .old fallback
	// must not have been destroyed by a save that reported failure.
	if got := loadMarker(t, dir); got != "v1" && got != "v2" {
		t.Fatalf("marker = %q, want a complete generation", got)
	}
	entries, err := os.ReadDir(parent)
	if err != nil {
		t.Fatal(err)
	}
	foundOld := false
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".old") {
			foundOld = true
		}
	}
	if !foundOld {
		t.Error("failed save destroyed the .old fallback before durability was established")
	}
}

// assertNoDebris fails if any temp or backup directory from the atomic
// swap is left next to the target.
func assertNoDebris(t *testing.T, parent string) {
	t.Helper()
	entries, err := os.ReadDir(parent)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp") || strings.HasSuffix(e.Name(), ".old") {
			t.Errorf("atomic save left debris %s in %s", e.Name(), parent)
		}
	}
}
