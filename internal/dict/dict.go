// Package dict implements the intelligent data dictionary of the system
// architecture (Figure 6): a frame-like registry of object types, the
// type hierarchies with their classifying attributes, the relationship
// links between object types, the active domains of attributes, and the
// induced rule base. The Inductive Learning Subsystem fills it; the
// inference processor reads it.
package dict

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"intensional/internal/relation"
	"intensional/internal/rules"
	"intensional/internal/storage"
)

// Subtype names one subtype of a hierarchy together with the classifying
// attribute value that identifies membership (e.g. subtype SSBN of CLASS
// is identified by Type = "SSBN"; subtype C0101 of SUBMARINE by
// Class = "0101").
type Subtype struct {
	Name  string
	Value relation.Value
}

// Hierarchy declares that an object type's instances partition into
// disjoint subtypes according to the value of a classifying attribute —
// the "E contains E1, ..., En with Ψ" construct of Section 2 grounded in
// the data.
type Hierarchy struct {
	Object          string // relation name, e.g. CLASS
	ClassifyingAttr string // attribute whose value names the subtype
	Subtypes        []Subtype
}

// Attr returns the classifying attribute as an AttrRef.
func (h *Hierarchy) Attr() rules.AttrRef {
	return rules.Attr(h.Object, h.ClassifyingAttr)
}

// SubtypeFor maps a classifying value to the subtype name.
func (h *Hierarchy) SubtypeFor(v relation.Value) (string, bool) {
	for _, s := range h.Subtypes {
		if s.Value.Equal(v) {
			return s.Name, true
		}
	}
	return "", false
}

// ValueFor maps a subtype name to its classifying value.
func (h *Hierarchy) ValueFor(name string) (relation.Value, bool) {
	for _, s := range h.Subtypes {
		if strings.EqualFold(s.Name, name) {
			return s.Value, true
		}
	}
	return relation.Value{}, false
}

// Link is one equality edge of a relationship or hierarchy level:
// From-attribute joins To-attribute.
type Link struct {
	From, To rules.AttrRef
}

// String renders the link.
func (l Link) String() string { return l.From.String() + " = " + l.To.String() }

// Relationship declares a relationship object type and the links that tie
// it to the participating entity types (e.g. INSTALL links
// INSTALL.Ship = SUBMARINE.Id and INSTALL.Sonar = SONAR.Sonar).
type Relationship struct {
	Name  string
	Links []Link
}

// Participants returns the distinct entity relation names the
// relationship connects (the To sides of its links).
func (r *Relationship) Participants() []string {
	var out []string
	for _, l := range r.Links {
		if !containsFold(out, l.To.Relation) {
			out = append(out, l.To.Relation)
		}
	}
	return out
}

func containsFold(list []string, s string) bool {
	for _, x := range list {
		if strings.EqualFold(x, s) {
			return true
		}
	}
	return false
}

// Dictionary is the knowledge base: schema-level declarations plus the
// induced rule set, bound to the catalog that holds the data.
//
// Concurrency contract: a dictionary is built single-threaded (the Add*
// declaration methods, Apply, SetRules, LoadRules), then may serve any
// number of concurrent readers — the inference processor and the
// inducer only read declarations and rules. The lazily filled domain
// caches are the one piece of state readers mutate, so they carry their
// own lock; everything else must be frozen before the dictionary is
// shared. core.System enforces this by publishing dictionaries in
// immutable snapshots and building a fresh one for each Induce.
type Dictionary struct {
	cat         *storage.Catalog
	hierarchies map[string]*Hierarchy // lower(object) → hierarchy
	hierOrder   []string              // registration order
	rels        []*Relationship
	levels      []Link // hierarchy-level links, e.g. SUBMARINE.Class = CLASS.Class
	ruleSet     *rules.Set

	cmu     sync.RWMutex                // protects the lazily filled caches below
	domains map[string]rules.Interval   // guarded by cmu — lower(attr key) → cached active domain
	values  map[string][]relation.Value // guarded by cmu — lower(attr key) → cached sorted distinct values
}

// New creates an empty dictionary over the catalog.
func New(cat *storage.Catalog) *Dictionary {
	return &Dictionary{
		cat:         cat,
		hierarchies: make(map[string]*Hierarchy),
		ruleSet:     rules.NewSet(),
		domains:     make(map[string]rules.Interval),
		values:      make(map[string][]relation.Value),
	}
}

// Catalog returns the bound catalog.
func (d *Dictionary) Catalog() *storage.Catalog { return d.cat }

// AddHierarchy registers a type hierarchy. One hierarchy per object type.
func (d *Dictionary) AddHierarchy(h *Hierarchy) error {
	key := strings.ToLower(h.Object)
	if _, dup := d.hierarchies[key]; dup {
		return fmt.Errorf("dict: object %s already has a hierarchy", h.Object)
	}
	if !d.cat.Has(h.Object) {
		return fmt.Errorf("dict: hierarchy on unknown relation %q", h.Object)
	}
	rel, err := d.cat.Get(h.Object)
	if err != nil {
		return err
	}
	if _, ok := rel.Schema().Index(h.ClassifyingAttr); !ok {
		return fmt.Errorf("dict: relation %s has no attribute %q", h.Object, h.ClassifyingAttr)
	}
	d.hierarchies[key] = h
	d.hierOrder = append(d.hierOrder, key)
	return nil
}

// Hierarchy returns the hierarchy declared on the object type, if any.
func (d *Dictionary) Hierarchy(object string) (*Hierarchy, bool) {
	h, ok := d.hierarchies[strings.ToLower(object)]
	return h, ok
}

// Hierarchies returns all hierarchies in registration order (candidate
// generation and rule numbering follow this order).
func (d *Dictionary) Hierarchies() []*Hierarchy {
	out := make([]*Hierarchy, len(d.hierOrder))
	for i, key := range d.hierOrder {
		out[i] = d.hierarchies[key]
	}
	return out
}

// AddRelationship registers a relationship declaration.
func (d *Dictionary) AddRelationship(r *Relationship) error {
	if !d.cat.Has(r.Name) {
		return fmt.Errorf("dict: relationship on unknown relation %q", r.Name)
	}
	for _, l := range r.Links {
		if err := d.checkAttr(l.From); err != nil {
			return err
		}
		if err := d.checkAttr(l.To); err != nil {
			return err
		}
	}
	d.rels = append(d.rels, r)
	return nil
}

// Relationships returns the declared relationships.
func (d *Dictionary) Relationships() []*Relationship { return d.rels }

// AddLevelLink declares that one object type's classifying attribute
// refers to another object type's key — the edge between two levels of a
// hierarchy chain (SUBMARINE.Class = CLASS.Class means CLASS is the
// type level above SUBMARINE instances).
func (d *Dictionary) AddLevelLink(l Link) error {
	if err := d.checkAttr(l.From); err != nil {
		return err
	}
	if err := d.checkAttr(l.To); err != nil {
		return err
	}
	d.levels = append(d.levels, l)
	return nil
}

// LevelLinks returns the hierarchy-level links.
func (d *Dictionary) LevelLinks() []Link { return d.levels }

// LevelAbove returns the link whose From side is an attribute of the
// given relation — the edge to the next hierarchy level.
func (d *Dictionary) LevelAbove(object string) (Link, bool) {
	for _, l := range d.levels {
		if strings.EqualFold(l.From.Relation, object) {
			return l, true
		}
	}
	return Link{}, false
}

func (d *Dictionary) checkAttr(a rules.AttrRef) error {
	rel, err := d.cat.Get(a.Relation)
	if err != nil {
		return fmt.Errorf("dict: %w", err)
	}
	if _, ok := rel.Schema().Index(a.Attribute); !ok {
		return fmt.Errorf("dict: relation %s has no attribute %q", a.Relation, a.Attribute)
	}
	return nil
}

// SetRules installs the induced rule base.
func (d *Dictionary) SetRules(s *rules.Set) { d.ruleSet = s }

// Rules returns the induced rule base.
func (d *Dictionary) Rules() *rules.Set { return d.ruleSet }

// ActiveDomain computes (and caches) the observed [min..max] interval of
// an attribute. The inference processor clips query conditions to it —
// the closed-world step that lets a premise with a finite upper bound
// subsume an unbounded condition (Example 1).
func (d *Dictionary) ActiveDomain(a rules.AttrRef) (rules.Interval, error) {
	key := a.Key()
	d.cmu.RLock()
	iv, ok := d.domains[key]
	d.cmu.RUnlock()
	if ok {
		return iv, nil
	}
	rel, err := d.cat.Get(a.Relation)
	if err != nil {
		return rules.Interval{}, err
	}
	min, okMin, err := rel.Min(a.Attribute)
	if err != nil {
		return rules.Interval{}, err
	}
	max, okMax, err := rel.Max(a.Attribute)
	if err != nil {
		return rules.Interval{}, err
	}
	if !okMin || !okMax {
		return rules.Interval{}, fmt.Errorf("dict: attribute %s has no values", a)
	}
	iv = rules.Range(min, max)
	// Concurrent misses may compute the interval twice; both arrive at
	// the same value, so last-write-wins is fine.
	d.cmu.Lock()
	d.domains[key] = iv
	d.cmu.Unlock()
	return iv, nil
}

// InvalidateDomains clears the active-domain caches (call after data
// mutation).
func (d *Dictionary) InvalidateDomains() {
	d.cmu.Lock()
	defer d.cmu.Unlock()
	d.domains = make(map[string]rules.Interval)
	d.values = make(map[string][]relation.Value)
}

// sortedValues returns (and caches) the attribute's distinct values in
// ascending order.
func (d *Dictionary) sortedValues(a rules.AttrRef) ([]relation.Value, error) {
	key := a.Key()
	d.cmu.RLock()
	vs, ok := d.values[key]
	d.cmu.RUnlock()
	if ok {
		return vs, nil
	}
	rel, err := d.cat.Get(a.Relation)
	if err != nil {
		return nil, err
	}
	col, err := rel.Column(a.Attribute)
	if err != nil {
		return nil, err
	}
	seen := make(map[string]struct{}, len(col))
	out := make([]relation.Value, 0, len(col))
	for _, v := range col {
		if v.IsNull() {
			continue
		}
		if _, dup := seen[v.Key()]; dup {
			continue
		}
		seen[v.Key()] = struct{}{}
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	d.cmu.Lock()
	d.values[key] = out
	d.cmu.Unlock()
	return out, nil
}

// SnapToObserved tightens a condition interval to the smallest closed
// interval covering the attribute's observed values inside it — the
// closed-world normalisation the inference processor applies to query
// conditions. ok is false when no observed value satisfies the condition
// (the extensional answer is provably empty).
func (d *Dictionary) SnapToObserved(a rules.AttrRef, iv rules.Interval) (snapped rules.Interval, ok bool, err error) {
	vs, err := d.sortedValues(a)
	if err != nil {
		return rules.Interval{}, false, err
	}
	var lo, hi relation.Value
	found := false
	for _, v := range vs {
		if !iv.Contains(v) {
			continue
		}
		if !found {
			lo, found = v, true
		}
		hi = v
	}
	if !found {
		return rules.Interval{}, false, nil
	}
	return rules.Range(lo, hi), true, nil
}

// StoreRules encodes the rule base into rule relations and places them in
// the catalog, replacing prior versions, so Catalog.Save relocates the
// knowledge with the data (Section 5.2.2).
func (d *Dictionary) StoreRules() error {
	enc, err := rules.Encode(d.ruleSet)
	if err != nil {
		return err
	}
	for _, rel := range []*relation.Relation{enc.Rules, enc.Map, enc.Attrs, enc.Meta} {
		if d.cat.Has(rel.Name()) {
			if err := d.cat.Drop(rel.Name()); err != nil {
				return err
			}
		}
		d.cat.Put(rel)
	}
	return nil
}

// LoadRules decodes the rule base from the catalog's rule relations.
func (d *Dictionary) LoadRules() error {
	get := func(name string) *relation.Relation {
		r, err := d.cat.Get(name)
		if err != nil {
			return nil
		}
		return r
	}
	enc := &rules.Relations{
		Rules: get(rules.RuleRelName),
		Map:   get(rules.MapRelName),
		Attrs: get(rules.AttrRelName),
		Meta:  get(rules.MetaRelName),
	}
	set, err := rules.Decode(enc)
	if err != nil {
		return err
	}
	d.ruleSet = set
	return nil
}

// RenderTree prints the hierarchy chain rooted at the given object as an
// indented tree with instance counts — the data-backed Figure 2 picture.
// Levels chain through level links: SUBMARINE instances group into CLASS
// subtypes, whose relation in turn may carry its own hierarchy.
func (d *Dictionary) RenderTree(object string) (string, error) {
	var b strings.Builder
	if err := d.renderLevel(&b, object, ""); err != nil {
		return "", err
	}
	return b.String(), nil
}

func (d *Dictionary) renderLevel(b *strings.Builder, object, prefix string) error {
	rel, err := d.cat.Get(object)
	if err != nil {
		return err
	}
	fmt.Fprintf(b, "%s%s (%d instances)\n", prefix, rel.Name(), rel.Len())
	if h, ok := d.Hierarchy(object); ok {
		ci, ok := rel.Schema().Index(h.ClassifyingAttr)
		if !ok {
			return fmt.Errorf("dict: relation %s lacks classifying attribute %q", object, h.ClassifyingAttr)
		}
		counts := map[string]int{}
		for _, row := range rel.Rows() {
			counts[row[ci].Key()]++
		}
		for i, sub := range h.Subtypes {
			connector := "├── "
			if i == len(h.Subtypes)-1 {
				connector = "└── "
			}
			fmt.Fprintf(b, "%s%s%s (%s = %s, %d instances)\n",
				prefix+connector, sub.Name, "", h.ClassifyingAttr, sub.Value, counts[sub.Value.Key()])
		}
	}
	// The level above (e.g. CLASS over SUBMARINE) renders after.
	if up, ok := d.LevelAbove(object); ok {
		fmt.Fprintf(b, "%slevel above via %s:\n", prefix, up)
		return d.renderLevel(b, up.To.Relation, prefix+"  ")
	}
	return nil
}

// ValidateHierarchy checks the Section 2 partition property for one
// hierarchy: every stored instance's classifying value names exactly one
// declared subtype (the subsets are disjoint by construction since the
// classifying value is a function of the tuple; coverage can fail). It
// returns the distinct classifying values with no declared subtype.
func (d *Dictionary) ValidateHierarchy(object string) ([]relation.Value, error) {
	h, ok := d.Hierarchy(object)
	if !ok {
		return nil, fmt.Errorf("dict: no hierarchy on %q", object)
	}
	vals, err := d.sortedValues(h.Attr())
	if err != nil {
		return nil, err
	}
	var missing []relation.Value
	for _, v := range vals {
		if _, ok := h.SubtypeFor(v); !ok {
			missing = append(missing, v)
		}
	}
	return missing, nil
}

// HierarchyOfSubtype finds the hierarchy that declares a subtype of the
// given name, along with the subtype entry.
func (d *Dictionary) HierarchyOfSubtype(name string) (*Hierarchy, Subtype, bool) {
	for _, key := range d.hierOrder {
		h := d.hierarchies[key]
		for _, s := range h.Subtypes {
			if strings.EqualFold(s.Name, name) {
				return h, s, true
			}
		}
	}
	return nil, Subtype{}, false
}

// SubtypeName resolves the subtype of object identified by the
// classifying value v, walking the declared hierarchy.
func (d *Dictionary) SubtypeName(object string, v relation.Value) (string, bool) {
	h, ok := d.Hierarchy(object)
	if !ok {
		return "", false
	}
	return h.SubtypeFor(v)
}
