package dict_test

import (
	"testing"

	"intensional/internal/dict"
	"intensional/internal/relation"
	"intensional/internal/rules"
	"intensional/internal/shipdb"
	"intensional/internal/storage"
)

func shipDict(t *testing.T) *dict.Dictionary {
	t.Helper()
	d, err := shipdb.Dictionary(shipdb.Catalog())
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestHierarchies(t *testing.T) {
	d := shipDict(t)
	h, ok := d.Hierarchy("CLASS")
	if !ok {
		t.Fatal("CLASS hierarchy missing")
	}
	if h.Attr().String() != "CLASS.Type" {
		t.Errorf("classifying attr = %s", h.Attr())
	}
	if name, ok := h.SubtypeFor(relation.String("SSBN")); !ok || name != "SSBN" {
		t.Errorf("SubtypeFor(SSBN) = %q, %v", name, ok)
	}
	if _, ok := h.SubtypeFor(relation.String("XX")); ok {
		t.Error("unknown value should not resolve")
	}
	if v, ok := h.ValueFor("ssn"); !ok || !v.Equal(relation.String("SSN")) {
		t.Errorf("ValueFor(ssn) = %v, %v", v, ok)
	}
	if got := len(d.Hierarchies()); got != 3 {
		t.Errorf("hierarchies = %d, want 3", got)
	}
	if name, ok := d.SubtypeName("SUBMARINE", relation.String("0101")); !ok || name != "C0101" {
		t.Errorf("SubtypeName = %q, %v", name, ok)
	}
	if _, ok := d.SubtypeName("TYPE", relation.String("SSN")); ok {
		t.Error("TYPE has no hierarchy")
	}
}

func TestRelationshipsAndLevels(t *testing.T) {
	d := shipDict(t)
	rels := d.Relationships()
	if len(rels) != 1 || rels[0].Name != "INSTALL" {
		t.Fatalf("relationships = %v", rels)
	}
	parts := rels[0].Participants()
	if len(parts) != 2 || parts[0] != "SUBMARINE" || parts[1] != "SONAR" {
		t.Errorf("participants = %v", parts)
	}
	link, ok := d.LevelAbove("SUBMARINE")
	if !ok || link.To.String() != "CLASS.Class" {
		t.Errorf("LevelAbove = %v, %v", link, ok)
	}
	if _, ok := d.LevelAbove("SONAR"); ok {
		t.Error("SONAR has no level above")
	}
}

func TestActiveDomain(t *testing.T) {
	d := shipDict(t)
	iv, err := d.ActiveDomain(rules.Attr("CLASS", "Displacement"))
	if err != nil {
		t.Fatal(err)
	}
	if got := iv.String(); got != "[2145..30000]" {
		t.Errorf("active domain = %s", got)
	}
	// Cached value must be served after invalidation of the underlying
	// data only when not invalidated.
	iv2, err := d.ActiveDomain(rules.Attr("CLASS", "Displacement"))
	if err != nil || iv2.String() != iv.String() {
		t.Errorf("cached domain = %s %v", iv2, err)
	}
	d.InvalidateDomains()
	if _, err := d.ActiveDomain(rules.Attr("CLASS", "Displacement")); err != nil {
		t.Errorf("after invalidate: %v", err)
	}
	if _, err := d.ActiveDomain(rules.Attr("NOPE", "X")); err == nil {
		t.Error("unknown relation should error")
	}
	if _, err := d.ActiveDomain(rules.Attr("CLASS", "Nope")); err == nil {
		t.Error("unknown attribute should error")
	}
}

func TestValidateHierarchy(t *testing.T) {
	d := shipDict(t)
	// All three ship hierarchies cover their data.
	for _, obj := range []string{"SUBMARINE", "CLASS", "SONAR"} {
		missing, err := d.ValidateHierarchy(obj)
		if err != nil {
			t.Fatal(err)
		}
		if len(missing) != 0 {
			t.Errorf("%s hierarchy misses values %v", obj, missing)
		}
	}
	if _, err := d.ValidateHierarchy("TYPE"); err == nil {
		t.Error("TYPE has no hierarchy; expected error")
	}
	// Inject an unclassified value.
	cls, err := d.Catalog().Get("CLASS")
	if err != nil {
		t.Fatal(err)
	}
	cls.MustInsert(relation.String("7777"), relation.String("X"),
		relation.String("SSGN"), relation.Int(9000))
	d.InvalidateDomains()
	missing, err := d.ValidateHierarchy("CLASS")
	if err != nil {
		t.Fatal(err)
	}
	if len(missing) != 1 || missing[0].Str() != "SSGN" {
		t.Errorf("missing = %v", missing)
	}
}

func TestSnapToObserved(t *testing.T) {
	d := shipDict(t)
	attr := rules.Attr("CLASS", "Displacement")
	cond, err := rules.FromOp(">", relation.Int(8000))
	if err != nil {
		t.Fatal(err)
	}
	snapped, ok, err := d.SnapToObserved(attr, cond)
	if err != nil || !ok {
		t.Fatalf("snap: %v %v", ok, err)
	}
	// Observed displacements above 8000 are 16600 and 30000.
	if got := snapped.String(); got != "[16600..30000]" {
		t.Errorf("snapped = %s", got)
	}
	// A condition with no observed values reports !ok.
	empty, err := rules.FromOp("<", relation.Int(2000))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := d.SnapToObserved(attr, empty); err != nil || ok {
		t.Errorf("empty snap: ok=%v err=%v", ok, err)
	}
	// Unknown attribute errors.
	if _, _, err := d.SnapToObserved(rules.Attr("CLASS", "Nope"), cond); err == nil {
		t.Error("unknown attribute should error")
	}
	// Cache survives and invalidates.
	if _, ok, _ := d.SnapToObserved(attr, cond); !ok {
		t.Error("cached snap failed")
	}
	d.InvalidateDomains()
	if _, ok, _ := d.SnapToObserved(attr, cond); !ok {
		t.Error("snap after invalidate failed")
	}
}

func TestValidationErrors(t *testing.T) {
	cat := shipdb.Catalog()
	d := dict.New(cat)
	if err := d.AddHierarchy(&dict.Hierarchy{Object: "NOPE", ClassifyingAttr: "X"}); err == nil {
		t.Error("hierarchy on unknown relation should error")
	}
	if err := d.AddHierarchy(&dict.Hierarchy{Object: "CLASS", ClassifyingAttr: "Nope"}); err == nil {
		t.Error("hierarchy on unknown attribute should error")
	}
	if err := d.AddHierarchy(&dict.Hierarchy{Object: "CLASS", ClassifyingAttr: "Type"}); err != nil {
		t.Fatal(err)
	}
	if err := d.AddHierarchy(&dict.Hierarchy{Object: "CLASS", ClassifyingAttr: "Type"}); err == nil {
		t.Error("duplicate hierarchy should error")
	}
	if err := d.AddRelationship(&dict.Relationship{Name: "NOPE"}); err == nil {
		t.Error("relationship on unknown relation should error")
	}
	if err := d.AddRelationship(&dict.Relationship{
		Name:  "INSTALL",
		Links: []dict.Link{{From: rules.Attr("INSTALL", "Nope"), To: rules.Attr("SUBMARINE", "Id")}},
	}); err == nil {
		t.Error("relationship with bad link should error")
	}
	if err := d.AddLevelLink(dict.Link{From: rules.Attr("X", "Y"), To: rules.Attr("CLASS", "Class")}); err == nil {
		t.Error("level link with unknown relation should error")
	}
}

func TestStoreLoadRules(t *testing.T) {
	d := shipDict(t)
	d.SetRules(shipdb.PaperRules())
	if err := d.StoreRules(); err != nil {
		t.Fatal(err)
	}
	if !d.Catalog().Has(rules.RuleRelName) {
		t.Fatal("rule relation missing from catalog")
	}
	// Save the catalog, load it elsewhere, and recover the rules — the
	// Section 5.2.2 relocation scenario.
	dir := t.TempDir()
	if err := d.Catalog().Save(dir); err != nil {
		t.Fatal(err)
	}
	cat2, err := storage.Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	d2 := dict.New(cat2)
	if err := d2.LoadRules(); err != nil {
		t.Fatal(err)
	}
	if d2.Rules().Len() != 17 {
		t.Fatalf("recovered %d rules, want 17", d2.Rules().Len())
	}
	orig := shipdb.PaperRules().Rules()
	for i, r := range d2.Rules().Rules() {
		if !r.Equal(orig[i]) {
			t.Errorf("rule %d: %s != %s", i, r, orig[i])
		}
	}
	// StoreRules twice replaces, not duplicates.
	if err := d.StoreRules(); err != nil {
		t.Fatal(err)
	}
}

func TestLoadRulesMissing(t *testing.T) {
	d := dict.New(storage.NewCatalog())
	if err := d.LoadRules(); err == nil {
		t.Error("LoadRules without rule relations should error")
	}
}
