package dict

import (
	"encoding/json"
	"fmt"

	"intensional/internal/relation"
	"intensional/internal/rules"
)

// Decls is the serialisable form of a dictionary's schema-level
// declarations (hierarchies, relationships, level links). Together with
// the rule relations in the catalog, it lets a database, its schema
// knowledge, and its induced knowledge relocate as one unit.
type Decls struct {
	Hierarchies   []HierarchyDecl    `json:"hierarchies"`
	Relationships []RelationshipDecl `json:"relationships"`
	LevelLinks    []LinkDecl         `json:"levelLinks"`
}

// HierarchyDecl mirrors Hierarchy with JSON-friendly values.
type HierarchyDecl struct {
	Object          string        `json:"object"`
	ClassifyingAttr string        `json:"classifyingAttr"`
	Subtypes        []SubtypeDecl `json:"subtypes"`
}

// SubtypeDecl mirrors Subtype.
type SubtypeDecl struct {
	Name  string    `json:"name"`
	Value ValueDecl `json:"value"`
}

// ValueDecl is the JSON form of a relation.Value.
type ValueDecl struct {
	Kind  string `json:"kind"` // "string", "int", "float", "null"
	Value string `json:"value,omitempty"`
}

// RelationshipDecl mirrors Relationship.
type RelationshipDecl struct {
	Name  string     `json:"name"`
	Links []LinkDecl `json:"links"`
}

// LinkDecl mirrors Link.
type LinkDecl struct {
	From string `json:"from"` // "Relation.Attribute"
	To   string `json:"to"`
}

func encodeValue(v relation.Value) ValueDecl {
	switch v.Kind() {
	case relation.KindNull:
		return ValueDecl{Kind: "null"}
	case relation.KindString:
		return ValueDecl{Kind: "string", Value: v.Str()}
	case relation.KindInt:
		return ValueDecl{Kind: "int", Value: v.String()}
	default:
		return ValueDecl{Kind: "float", Value: v.String()}
	}
}

func decodeValue(d ValueDecl) (relation.Value, error) {
	switch d.Kind {
	case "null":
		return relation.Null(), nil
	case "string":
		return relation.String(d.Value), nil
	case "int":
		return relation.ParseValue(d.Value, relation.TInt)
	case "float":
		return relation.ParseValue(d.Value, relation.TFloat)
	default:
		return relation.Value{}, fmt.Errorf("dict: unknown value kind %q", d.Kind)
	}
}

// Decls exports the dictionary's declarations.
func (d *Dictionary) Decls() *Decls {
	out := &Decls{}
	for _, h := range d.Hierarchies() {
		hd := HierarchyDecl{Object: h.Object, ClassifyingAttr: h.ClassifyingAttr}
		for _, s := range h.Subtypes {
			hd.Subtypes = append(hd.Subtypes, SubtypeDecl{Name: s.Name, Value: encodeValue(s.Value)})
		}
		out.Hierarchies = append(out.Hierarchies, hd)
	}
	for _, r := range d.Relationships() {
		rd := RelationshipDecl{Name: r.Name}
		for _, l := range r.Links {
			rd.Links = append(rd.Links, LinkDecl{From: l.From.String(), To: l.To.String()})
		}
		out.Relationships = append(out.Relationships, rd)
	}
	for _, l := range d.LevelLinks() {
		out.LevelLinks = append(out.LevelLinks, LinkDecl{From: l.From.String(), To: l.To.String()})
	}
	return out
}

// Apply installs declarations into the dictionary, validating them
// against the catalog.
func (d *Dictionary) Apply(decls *Decls) error {
	for _, hd := range decls.Hierarchies {
		h := &Hierarchy{Object: hd.Object, ClassifyingAttr: hd.ClassifyingAttr}
		for _, sd := range hd.Subtypes {
			v, err := decodeValue(sd.Value)
			if err != nil {
				return err
			}
			h.Subtypes = append(h.Subtypes, Subtype{Name: sd.Name, Value: v})
		}
		if err := d.AddHierarchy(h); err != nil {
			return err
		}
	}
	decodeLink := func(ld LinkDecl) (Link, error) {
		from, err := rules.ParseAttrRef(ld.From)
		if err != nil {
			return Link{}, err
		}
		to, err := rules.ParseAttrRef(ld.To)
		if err != nil {
			return Link{}, err
		}
		return Link{From: from, To: to}, nil
	}
	for _, rd := range decls.Relationships {
		r := &Relationship{Name: rd.Name}
		for _, ld := range rd.Links {
			l, err := decodeLink(ld)
			if err != nil {
				return err
			}
			r.Links = append(r.Links, l)
		}
		if err := d.AddRelationship(r); err != nil {
			return err
		}
	}
	for _, ld := range decls.LevelLinks {
		l, err := decodeLink(ld)
		if err != nil {
			return err
		}
		if err := d.AddLevelLink(l); err != nil {
			return err
		}
	}
	return nil
}

// MarshalDecls renders the declarations as indented JSON.
func MarshalDecls(d *Decls) ([]byte, error) {
	return json.MarshalIndent(d, "", "  ")
}

// UnmarshalDecls parses declarations JSON.
func UnmarshalDecls(data []byte) (*Decls, error) {
	var d Decls
	if err := json.Unmarshal(data, &d); err != nil {
		return nil, fmt.Errorf("dict: parse declarations: %w", err)
	}
	return &d, nil
}
