package dict_test

import (
	"strings"
	"testing"

	"intensional/internal/answer"
	"intensional/internal/core"
	"intensional/internal/dict"
	"intensional/internal/induct"
	"intensional/internal/ker"
	"intensional/internal/relation"
	"intensional/internal/shipdb"
	"intensional/internal/storage"
)

// TestFromKERDerivesShipDictionary checks that the Appendix B schema plus
// the Appendix C data yield the same dictionary shipdb hand-declares.
func TestFromKERDerivesShipDictionary(t *testing.T) {
	m, err := ker.Parse(shipdb.KERSchema)
	if err != nil {
		t.Fatal(err)
	}
	cat := shipdb.Catalog()
	d, err := dict.FromKER(m, cat)
	if err != nil {
		t.Fatal(err)
	}

	// Hierarchies: CLASS by Type, SUBMARINE by Class, SONAR by SonarType.
	cases := []struct {
		object, attr string
		subtypes     int
	}{
		{"CLASS", "Type", 2},
		{"SUBMARINE", "Class", 13},
		{"SONAR", "SonarType", 3},
	}
	for _, c := range cases {
		h, ok := d.Hierarchy(c.object)
		if !ok {
			t.Errorf("%s hierarchy missing", c.object)
			continue
		}
		if !strings.EqualFold(h.ClassifyingAttr, c.attr) {
			t.Errorf("%s classified by %s, want %s", c.object, h.ClassifyingAttr, c.attr)
		}
		if len(h.Subtypes) != c.subtypes {
			t.Errorf("%s subtypes = %d, want %d", c.object, len(h.Subtypes), c.subtypes)
		}
	}
	// C0101 maps to the value "0101" via the suffix convention.
	h, _ := d.Hierarchy("SUBMARINE")
	if name, ok := h.SubtypeFor(relation.String("0101")); !ok || name != "C0101" {
		t.Errorf("SubtypeFor(0101) = %q, %v", name, ok)
	}

	// INSTALL (two object-domain attributes) becomes a relationship.
	rels := d.Relationships()
	if len(rels) != 1 || rels[0].Name != "INSTALL" || len(rels[0].Links) != 2 {
		t.Fatalf("relationships = %v", rels)
	}
	if rels[0].Links[0].String() != "INSTALL.Ship = SUBMARINE.Id" {
		t.Errorf("link 0 = %s", rels[0].Links[0])
	}
	// SUBMARINE.Class (one object-domain attribute) becomes a level link.
	link, ok := d.LevelAbove("SUBMARINE")
	if !ok || link.To.String() != "CLASS.Class" {
		t.Errorf("level link = %v, %v", link, ok)
	}
}

// TestFromKERPipelineReproducesExamples runs the full pipeline with the
// derived dictionary: induction and Example 1 inference must match the
// hand-declared dictionary's behaviour.
func TestFromKERPipelineReproducesExamples(t *testing.T) {
	m, err := ker.Parse(shipdb.KERSchema)
	if err != nil {
		t.Fatal(err)
	}
	cat := shipdb.Catalog()
	d, err := dict.FromKER(m, cat)
	if err != nil {
		t.Fatal(err)
	}
	sys := core.New(cat, d)
	set, err := sys.Induce(induct.Options{Nc: 3})
	if err != nil {
		t.Fatal(err)
	}
	if set.Len() != 18 {
		t.Errorf("induced %d rules with the derived dictionary, want 18:\n%s", set.Len(), set)
	}
	resp, err := sys.Query(`SELECT SUBMARINE.ID FROM SUBMARINE, CLASS
		WHERE SUBMARINE.CLASS = CLASS.CLASS AND CLASS.DISPLACEMENT > 8000`, answer.ForwardOnly)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(resp.Intensional.Text(), "SSBN") {
		t.Errorf("intensional = %q", resp.Intensional.Text())
	}
}

// tCatalog builds a catalog with relation T(Id, Kind) holding the given
// Kind values.
func tCatalog(t *testing.T, kinds ...string) *storage.Catalog {
	t.Helper()
	cat := storage.NewCatalog()
	r, err := cat.Create("T", relation.MustSchema(
		relation.Column{Name: "Id", Type: relation.TInt},
		relation.Column{Name: "Kind", Type: relation.TString},
	))
	if err != nil {
		t.Fatal(err)
	}
	for i, k := range kinds {
		r.MustInsert(relation.Int(int64(i)), relation.String(k))
	}
	return cat
}

// TestFromKERPartialCoverage: an attribute naming only some of the
// declared subtypes is coincidental and must be rejected.
func TestFromKERPartialCoverage(t *testing.T) {
	m, err := ker.Parse(`
object type T
  has key: Id domain: integer
  has: Kind domain: char[8]
T contains ALPHA, BETA, GAMMA
`)
	if err != nil {
		t.Fatal(err)
	}
	cat := tCatalog(t, "ALPHA", "BETA", "OTHER") // GAMMA never appears
	if _, err := dict.FromKER(m, cat); err == nil {
		t.Error("partial subtype coverage should error")
	}
}

// TestFromKERNominalHierarchySkipped: subtypes never named in the data
// produce no hierarchy (and no error when NO attribute matches at all).
func TestFromKERNominalHierarchySkipped(t *testing.T) {
	m, err := ker.Parse(`
object type T
  has key: Id domain: integer
  has: Kind domain: char[8]
T contains X1, X2
`)
	if err != nil {
		t.Fatal(err)
	}
	cat := tCatalog(t, "foo", "bar")
	d, err := dict.FromKER(m, cat)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := d.Hierarchy("T"); ok {
		t.Error("nominal hierarchy should be skipped")
	}
}
