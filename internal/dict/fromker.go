package dict

import (
	"fmt"
	"strings"

	"intensional/internal/ker"
	"intensional/internal/relation"
	"intensional/internal/rules"
	"intensional/internal/storage"
)

// FromKER derives a dictionary from a parsed KER model and the catalog
// holding the model's data:
//
//   - Type hierarchies come from contains/isa declarations. The
//     classifying attribute is the object's attribute whose stored
//     values best name the declared subtypes (exact match, or subtype
//     name suffixed by the value, covering conventions like subtype
//     C0101 for Class = "0101").
//   - Object-domain attributes become links: an entity type with one
//     object-domain attribute gets a hierarchy-level link to the
//     referenced type's key; an object type whose attributes are mostly
//     object domains is a relationship and gets relationship links.
//
// The result is the same structure shipdb.Dictionary hand-declares, but
// computed from the Appendix B schema.
func FromKER(m *ker.Model, cat *storage.Catalog) (*Dictionary, error) {
	d := New(cat)

	// Hierarchies.
	for _, o := range m.Types() {
		if len(o.Subtypes) == 0 || !cat.Has(o.Name) {
			continue
		}
		h, err := deriveHierarchy(d, o)
		if err != nil {
			return nil, err
		}
		if h != nil {
			if err := d.AddHierarchy(h); err != nil {
				return nil, err
			}
		}
	}

	// Links from object-domain attributes.
	for _, o := range m.Types() {
		if len(o.Attrs) == 0 || !cat.Has(o.Name) {
			continue
		}
		var links []Link
		for _, a := range o.Attrs {
			ref, ok := m.Type(a.Domain)
			if !ok || len(ref.Attrs) == 0 || !cat.Has(ref.Name) {
				continue
			}
			keys := ref.KeyAttrs()
			if len(keys) == 0 {
				continue
			}
			links = append(links, Link{
				From: rules.Attr(o.Name, a.Name),
				To:   rules.Attr(ref.Name, keys[0].Name),
			})
		}
		if len(links) == 0 {
			continue
		}
		if len(links) >= 2 {
			// Two or more object references: a relationship type.
			if err := d.AddRelationship(&Relationship{Name: o.Name, Links: links}); err != nil {
				return nil, err
			}
			continue
		}
		if err := d.AddLevelLink(links[0]); err != nil {
			return nil, err
		}
	}
	return d, nil
}

// deriveHierarchy finds the classifying attribute and subtype values for
// one object type's declared subtypes. It returns nil (no error) when no
// attribute's data names the subtypes — the hierarchy is then purely
// nominal and unusable for inference.
func deriveHierarchy(d *Dictionary, o *ker.ObjectType) (*Hierarchy, error) {
	rel, err := d.Catalog().Get(o.Name)
	if err != nil {
		return nil, err
	}
	type candidate struct {
		attr     string
		matched  int
		subtypes []Subtype
	}
	var best *candidate
	for _, col := range rel.Schema().Columns() {
		vals, err := d.sortedValues(rules.Attr(o.Name, col.Name))
		if err != nil {
			return nil, err
		}
		c := candidate{attr: col.Name}
		for _, sub := range o.Subtypes {
			if v, ok := matchSubtype(sub, vals); ok {
				c.matched++
				c.subtypes = append(c.subtypes, Subtype{Name: sub, Value: v})
			}
		}
		if c.matched == 0 {
			continue
		}
		if best == nil || c.matched > best.matched {
			cc := c
			best = &cc
		}
	}
	if best == nil || best.matched < len(o.Subtypes) {
		// Require full coverage of the declared subtypes; otherwise the
		// attribute is coincidental.
		if best == nil {
			return nil, nil
		}
		return nil, fmt.Errorf("dict: hierarchy on %s: attribute %s names only %d of %d subtypes",
			o.Name, best.attr, best.matched, len(o.Subtypes))
	}
	return &Hierarchy{Object: o.Name, ClassifyingAttr: best.attr, Subtypes: best.subtypes}, nil
}

// matchSubtype finds the stored value a subtype name stands for: an
// exact (case-insensitive) value, or a value the name ends with
// (subtype C0101 ↔ value "0101").
func matchSubtype(name string, vals []relation.Value) (relation.Value, bool) {
	for _, v := range vals {
		if v.Kind() == relation.KindString && strings.EqualFold(v.Str(), name) {
			return v, true
		}
	}
	for _, v := range vals {
		if v.Kind() != relation.KindString {
			continue // suffix matching on numbers is coincidental
		}
		s := v.Str()
		// Allow at most a two-character prefix (C0101 ↔ "0101").
		if len(s) > 0 && len(name) > len(s) && len(name)-len(s) <= 2 &&
			strings.EqualFold(name[len(name)-len(s):], s) {
			return v, true
		}
	}
	return relation.Value{}, false
}
