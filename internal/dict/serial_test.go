package dict_test

import (
	"strings"
	"testing"

	"intensional/internal/dict"
	"intensional/internal/relation"
	"intensional/internal/shipdb"
	"intensional/internal/storage"
)

func TestDeclsRoundtrip(t *testing.T) {
	d := shipDict(t)
	data, err := dict.MarshalDecls(d.Decls())
	if err != nil {
		t.Fatal(err)
	}
	decls, err := dict.UnmarshalDecls(data)
	if err != nil {
		t.Fatal(err)
	}
	d2 := dict.New(shipdb.Catalog())
	if err := d2.Apply(decls); err != nil {
		t.Fatal(err)
	}
	if len(d2.Hierarchies()) != 3 || len(d2.Relationships()) != 1 || len(d2.LevelLinks()) != 1 {
		t.Fatalf("recovered: %d hierarchies, %d relationships, %d levels",
			len(d2.Hierarchies()), len(d2.Relationships()), len(d2.LevelLinks()))
	}
	h, ok := d2.Hierarchy("SUBMARINE")
	if !ok || len(h.Subtypes) != 13 {
		t.Errorf("SUBMARINE hierarchy = %+v", h)
	}
	// Insertion order survives (drives induction ordering).
	if d2.Hierarchies()[0].Object != "SUBMARINE" {
		t.Errorf("first hierarchy = %s", d2.Hierarchies()[0].Object)
	}
}

func TestDeclsValueKinds(t *testing.T) {
	cat := shipdb.Catalog()
	cls, _ := cat.Get("CLASS")
	_ = cls
	d := dict.New(cat)
	if err := d.AddHierarchy(&dict.Hierarchy{
		Object:          "CLASS",
		ClassifyingAttr: "Displacement",
		Subtypes: []dict.Subtype{
			{Name: "LIGHT", Value: relation.Int(2145)},
			{Name: "FLOATY", Value: relation.Float(1.5)},
			{Name: "NONE", Value: relation.Null()},
		},
	}); err != nil {
		t.Fatal(err)
	}
	data, err := dict.MarshalDecls(d.Decls())
	if err != nil {
		t.Fatal(err)
	}
	decls, err := dict.UnmarshalDecls(data)
	if err != nil {
		t.Fatal(err)
	}
	d2 := dict.New(shipdb.Catalog())
	if err := d2.Apply(decls); err != nil {
		t.Fatal(err)
	}
	h, _ := d2.Hierarchy("CLASS")
	if !h.Subtypes[0].Value.Equal(relation.Int(2145)) {
		t.Errorf("int value = %#v", h.Subtypes[0].Value)
	}
	if !h.Subtypes[1].Value.Equal(relation.Float(1.5)) {
		t.Errorf("float value = %#v", h.Subtypes[1].Value)
	}
	if !h.Subtypes[2].Value.IsNull() {
		t.Errorf("null value = %#v", h.Subtypes[2].Value)
	}
}

func TestUnmarshalDeclsErrors(t *testing.T) {
	if _, err := dict.UnmarshalDecls([]byte("{not json")); err == nil {
		t.Error("bad JSON should error")
	}
	// Unknown value kind surfaces at Apply time.
	decls, err := dict.UnmarshalDecls([]byte(`{
		"hierarchies": [{"object": "CLASS", "classifyingAttr": "Type",
			"subtypes": [{"name": "X", "value": {"kind": "blob", "value": "1"}}]}]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	d := dict.New(shipdb.Catalog())
	if err := d.Apply(decls); err == nil || !strings.Contains(err.Error(), "unknown value kind") {
		t.Errorf("Apply error = %v", err)
	}
}

func TestApplyValidatesAgainstCatalog(t *testing.T) {
	d := shipDict(t)
	data, err := dict.MarshalDecls(d.Decls())
	if err != nil {
		t.Fatal(err)
	}
	decls, err := dict.UnmarshalDecls(data)
	if err != nil {
		t.Fatal(err)
	}
	// An empty catalog cannot satisfy the declarations.
	if err := dict.New(storage.NewCatalog()).Apply(decls); err == nil {
		t.Error("Apply against empty catalog should error")
	}
	// Bad attribute references in links error too.
	badLink, err := dict.UnmarshalDecls([]byte(`{"levelLinks":[{"from":"nodot","to":"CLASS.Class"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if err := dict.New(shipdb.Catalog()).Apply(badLink); err == nil {
		t.Error("unparseable link reference should error")
	}
}

func TestRenderTreeErrors(t *testing.T) {
	d := shipDict(t)
	if _, err := d.RenderTree("NOPE"); err == nil {
		t.Error("unknown object should error")
	}
	out, err := d.RenderTree("SONAR")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "TACTAS (SonarType = TACTAS, 1 instances)") {
		t.Errorf("tree = %q", out)
	}
}
