package dict_test

import (
	"sync"
	"testing"

	"intensional/internal/rules"
)

// TestDomainCachesConcurrent hammers the lazily filled active-domain and
// sorted-value caches from many goroutines — the access pattern of
// concurrent queries sharing one published dictionary. Run under -race.
func TestDomainCachesConcurrent(t *testing.T) {
	d := shipDict(t)
	attrs := []rules.AttrRef{
		rules.Attr("CLASS", "Displacement"),
		rules.Attr("CLASS", "Type"),
		rules.Attr("SUBMARINE", "Class"),
		rules.Attr("SONAR", "Sonar"),
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				a := attrs[(g+i)%len(attrs)]
				iv, err := d.ActiveDomain(a)
				if err != nil {
					t.Errorf("ActiveDomain(%s): %v", a, err)
					return
				}
				if _, ok, err := d.SnapToObserved(a, iv); err != nil || !ok {
					t.Errorf("SnapToObserved(%s): ok=%v err=%v", a, ok, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}
