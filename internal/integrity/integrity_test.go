package integrity_test

import (
	"strings"
	"testing"

	"intensional/internal/integrity"
	"intensional/internal/ker"
	"intensional/internal/relation"
	"intensional/internal/shipdb"
	"intensional/internal/storage"
)

const figure1Schema = `
object type SUBMARINE
  has key: ShipId domain: char[10]
  has: ShipName domain: char[20]
  has: ShipType domain: char[4]
  has: ShipClass domain: char[4]
  has: Displacement domain: integer
  with Displacement in [2000..30000]
`

func TestBuildCatalogFromFigure1(t *testing.T) {
	m, err := ker.Parse(figure1Schema)
	if err != nil {
		t.Fatal(err)
	}
	cat, err := integrity.BuildCatalog(m)
	if err != nil {
		t.Fatal(err)
	}
	rel, err := cat.Get("SUBMARINE")
	if err != nil {
		t.Fatal(err)
	}
	if rel.Schema().Len() != 5 {
		t.Fatalf("schema = %s", rel.Schema())
	}
	i := rel.Schema().MustIndex("Displacement")
	if rel.Schema().Col(i).Type != relation.TInt {
		t.Errorf("Displacement type = %v", rel.Schema().Col(i).Type)
	}
	i = rel.Schema().MustIndex("ShipId")
	if rel.Schema().Col(i).Type != relation.TString {
		t.Errorf("ShipId type = %v", rel.Schema().Col(i).Type)
	}
}

func TestBuildCatalogObjectDomain(t *testing.T) {
	m, err := ker.Parse(shipdb.KERSchema)
	if err != nil {
		t.Fatal(err)
	}
	cat, err := integrity.BuildCatalog(m)
	if err != nil {
		t.Fatal(err)
	}
	// SUBMARINE.Class has object domain CLASS, whose key is char[4]:
	// the generated column must store strings.
	sub, err := cat.Get("SUBMARINE")
	if err != nil {
		t.Fatal(err)
	}
	i := sub.Schema().MustIndex("Class")
	if sub.Schema().Col(i).Type != relation.TString {
		t.Errorf("object-domain column type = %v", sub.Schema().Col(i).Type)
	}
	// Skeletal subtypes (SSBN, C0101, ...) generate no relations.
	if cat.Has("SSBN") || cat.Has("C0101") {
		t.Error("skeletal subtypes must not generate relations")
	}
}

// TestShipDataSatisfiesSchema checks the Appendix C instance against the
// Appendix B declarations: no violations.
func TestShipDataSatisfiesSchema(t *testing.T) {
	m, err := ker.Parse(shipdb.KERSchema)
	if err != nil {
		t.Fatal(err)
	}
	vs, err := integrity.Check(m, shipdb.Catalog())
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range vs {
		t.Errorf("unexpected violation: %s", v)
	}
}

// TestDomainRangeViolation injects a displacement outside the Figure 1
// with-constraint.
func TestDomainRangeViolation(t *testing.T) {
	m, err := ker.Parse(figure1Schema)
	if err != nil {
		t.Fatal(err)
	}
	cat, err := integrity.BuildCatalog(m)
	if err != nil {
		t.Fatal(err)
	}
	rel, _ := cat.Get("SUBMARINE")
	rel.MustInsert(relation.String("S1"), relation.String("Ok Ship"),
		relation.String("SSN"), relation.String("0201"), relation.Int(5000))
	rel.MustInsert(relation.String("S2"), relation.String("Too Light"),
		relation.String("SSN"), relation.String("0201"), relation.Int(500))
	vs, err := integrity.Check(m, cat)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 1 {
		t.Fatalf("violations = %v", vs)
	}
	if vs[0].Row != 1 || !strings.Contains(vs[0].String(), "Displacement in [2000..30000]") {
		t.Errorf("violation = %s", vs[0])
	}
}

// TestConstraintRuleViolation injects a class whose type contradicts the
// declared Class-range rule.
func TestConstraintRuleViolation(t *testing.T) {
	m, err := ker.Parse(shipdb.KERSchema)
	if err != nil {
		t.Fatal(err)
	}
	cat := shipdb.Catalog()
	cls, _ := cat.Get("CLASS")
	cls.MustInsert(relation.String("0104"), relation.String("Bogus"),
		relation.String("SSN"), relation.Int(9000)) // 0101..0103->SSBN rule: 0104 outside, fine
	cls.MustInsert(relation.String("0102"), relation.String("Contradiction"),
		relation.String("SSN"), relation.Int(9000)) // inside 0101..0103 but typed SSN
	vs, err := integrity.Check(m, cat)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 1 {
		t.Fatalf("violations = %v", vs)
	}
	if !strings.Contains(vs[0].Constraint, `then Type = "SSBN"`) {
		t.Errorf("violation = %s", vs[0])
	}
}

// TestCharLengthAndSetViolations exercises char[n] limits and set
// specifications through a derived-domain chain.
func TestCharLengthAndSetViolations(t *testing.T) {
	m, err := ker.Parse(`
domain CODE isa char[4]
domain GRADE isa integer set of {1, 2, 3}
object type T
  has key: Id domain: integer
  has: Code domain: CODE
  has: Grade domain: GRADE
`)
	if err != nil {
		t.Fatal(err)
	}
	cat, err := integrity.BuildCatalog(m)
	if err != nil {
		t.Fatal(err)
	}
	rel, _ := cat.Get("T")
	rel.MustInsert(relation.Int(1), relation.String("ABCD"), relation.Int(2))
	rel.MustInsert(relation.Int(2), relation.String("TOOLONG"), relation.Int(2))
	rel.MustInsert(relation.Int(3), relation.String("OK"), relation.Int(9))
	rel.MustInsert(relation.Int(4), relation.Null(), relation.Null()) // nulls pass
	vs, err := integrity.Check(m, cat)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 2 {
		t.Fatalf("violations = %v", vs)
	}
	if !strings.Contains(vs[0].Constraint, "char[4]") {
		t.Errorf("violation 0 = %s", vs[0])
	}
	if !strings.Contains(vs[1].Constraint, "set") {
		t.Errorf("violation 1 = %s", vs[1])
	}
}

// TestHasInstanceLoading: the KER classification construct puts the
// extension into the schema file; BuildCatalog materialises it.
func TestHasInstanceLoading(t *testing.T) {
	m, err := ker.Parse(`
object type SUBMARINE
  has key: Id domain: char[10]
  has: Name domain: char[20]
  has: Displacement domain: integer
  with Displacement in [2000..30000]

instance of SUBMARINE (Id = "SSBN730", Name = "Rhode Island", Displacement = 16600)
instance of SUBMARINE (Id = "SSBN130", Name = "Typhoon", Displacement = "30000")
instance of SUBMARINE (Id = "SSX999")
`)
	if err != nil {
		t.Fatal(err)
	}
	cat, err := integrity.BuildCatalog(m)
	if err != nil {
		t.Fatal(err)
	}
	rel, err := cat.Get("SUBMARINE")
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 3 {
		t.Fatalf("instances = %d:\n%s", rel.Len(), rel)
	}
	if rel.Row(0)[1].Str() != "Rhode Island" || rel.Row(0)[2].Int64() != 16600 {
		t.Errorf("row 0 = %v", rel.Row(0))
	}
	// The quoted "30000" coerces into the integer column.
	if rel.Row(1)[2].Int64() != 30000 {
		t.Errorf("row 1 = %v", rel.Row(1))
	}
	// Unassigned attributes are null.
	if !rel.Row(2)[1].IsNull() || !rel.Row(2)[2].IsNull() {
		t.Errorf("row 2 = %v", rel.Row(2))
	}
	// The loaded data passes its own constraints.
	vs, err := integrity.Check(m, cat)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 0 {
		t.Errorf("violations = %v", vs)
	}
}

func TestHasInstanceErrors(t *testing.T) {
	if _, err := ker.Parse(`instance of NOPE (Id = 1)`); err == nil {
		t.Error("instance of unknown type should error")
	}
	if _, err := ker.Parse(`
object type T
  has key: Id domain: integer
instance of T (Nope = 1)
`); err == nil {
		t.Error("instance with unknown attribute should error")
	}
	if _, err := ker.Parse(`
object type T
  has key: Id domain: integer
instance of T (Id = 1, Id = 2)
`); err == nil {
		t.Error("duplicate attribute assignment should error")
	}
	if _, err := ker.Parse(`
object type T
  has key: Id domain: integer
instance of T (Id = 1
`); err == nil {
		t.Error("unterminated instance should error")
	}
	// A value that cannot coerce fails at catalog build time.
	m, err := ker.Parse(`
object type T
  has key: Id domain: integer
instance of T (Id = "xyz")
`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := integrity.BuildCatalog(m); err == nil {
		t.Error("uncoercible instance value should fail BuildCatalog")
	}
}

func TestCheckSkipsMissingRelations(t *testing.T) {
	m, err := ker.Parse(figure1Schema)
	if err != nil {
		t.Fatal(err)
	}
	vs, err := integrity.Check(m, storage.NewCatalog())
	if err != nil || len(vs) != 0 {
		t.Errorf("missing relations should be skipped: %v %v", vs, err)
	}
}

func TestCheckUnknownAttribute(t *testing.T) {
	m, err := ker.Parse(figure1Schema)
	if err != nil {
		t.Fatal(err)
	}
	cat := storage.NewCatalog()
	// A SUBMARINE relation lacking the declared attributes.
	if _, err := cat.Create("SUBMARINE", relation.MustSchema(
		relation.Column{Name: "X", Type: relation.TInt})); err != nil {
		t.Fatal(err)
	}
	if _, err := integrity.Check(m, cat); err == nil {
		t.Error("relation missing declared attributes should error")
	}
}

func TestBuildCatalogErrors(t *testing.T) {
	// Object domain without a key.
	m := ker.NewModel()
	if err := m.AddObjectType(&ker.ObjectType{
		Name:  "NOKEY",
		Attrs: []ker.Attribute{{Name: "A", Domain: "integer"}},
	}); err != nil {
		t.Fatal(err)
	}
	if err := m.AddObjectType(&ker.ObjectType{
		Name:  "REF",
		Attrs: []ker.Attribute{{Name: "B", Domain: "NOKEY"}},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := integrity.BuildCatalog(m); err == nil {
		t.Error("object domain without key should error")
	}
}
