// Package integrity grounds a KER model against relational data: it
// generates catalog schemas from object type definitions and checks the
// model's knowledge specifications — domain specifications (ranges,
// sets, char lengths), domain range constraints, and constraint rules —
// against stored instances. This is the "knowledge-based data
// processing" role Section 2 assigns the with-constraint information:
// the same declarations that drive intensional answering also validate
// the extension.
//
// Structure rules ("x isa T and ... then x isa S") classify instances
// rather than constrain single tuples, so they are exercised by the
// inference layer, not checked here.
package integrity

import (
	"fmt"

	"intensional/internal/ker"
	"intensional/internal/relation"
	"intensional/internal/storage"
)

// BuildCatalog creates an empty relation for every fully defined object
// type of the model (skeletal hierarchy subtypes have no attributes and
// produce no relation). Attribute storage types resolve through the
// domain chain; an attribute whose domain is an object type stores that
// type's primary key.
func BuildCatalog(m *ker.Model) (*storage.Catalog, error) {
	cat := storage.NewCatalog()
	for _, o := range m.Types() {
		if len(o.Attrs) == 0 {
			continue
		}
		cols := make([]relation.Column, 0, len(o.Attrs))
		for _, a := range o.Attrs {
			t, err := storageType(m, o, a)
			if err != nil {
				return nil, err
			}
			cols = append(cols, relation.Column{Name: a.Name, Type: t})
		}
		schema, err := relation.NewSchema(cols...)
		if err != nil {
			return nil, fmt.Errorf("integrity: object type %s: %w", o.Name, err)
		}
		rel, err := cat.Create(o.Name, schema)
		if err != nil {
			return nil, err
		}
		// Load has-instance declarations (the KER classification
		// construct): the schema file carries its own extension.
		for _, inst := range m.Instances(o.Name) {
			row := make(relation.Tuple, schema.Len())
			for i := range row {
				row[i] = relation.Null()
			}
			for attr, v := range inst.Values {
				ci, ok := schema.Index(attr)
				if !ok {
					return nil, fmt.Errorf("integrity: instance of %s assigns unknown attribute %q", o.Name, attr)
				}
				cv, err := coerceValue(v, schema.Col(ci).Type)
				if err != nil {
					return nil, fmt.Errorf("integrity: instance of %s, attribute %s: %w", o.Name, attr, err)
				}
				row[ci] = cv
			}
			if err := rel.Insert(row); err != nil {
				return nil, err
			}
		}
	}
	return cat, nil
}

// coerceValue adapts an instance value to a column type, parsing string
// literals into numbers where needed.
func coerceValue(v relation.Value, t relation.Type) (relation.Value, error) {
	if v.Conforms(t) {
		return v, nil
	}
	if v.Kind() == relation.KindString {
		return relation.ParseValue(v.Str(), t)
	}
	return relation.Value{}, fmt.Errorf("value %#v does not fit column type %s", v, t)
}

// storageType resolves an attribute's storage type, following object
// domains to the referenced type's key attribute.
func storageType(m *ker.Model, o *ker.ObjectType, a ker.Attribute) (relation.Type, error) {
	if d, ok := m.Domain(a.Domain); ok {
		return d.Storage, nil
	}
	ref, ok := m.Type(a.Domain)
	if !ok {
		return 0, fmt.Errorf("integrity: %s.%s: unknown domain %q", o.Name, a.Name, a.Domain)
	}
	keys := ref.KeyAttrs()
	if len(keys) == 0 {
		return 0, fmt.Errorf("integrity: %s.%s: object domain %s has no key attribute",
			o.Name, a.Name, ref.Name)
	}
	if d, ok := m.Domain(keys[0].Domain); ok {
		return d.Storage, nil
	}
	return 0, fmt.Errorf("integrity: %s.%s: object domain %s key has unresolvable domain %q",
		o.Name, a.Name, ref.Name, keys[0].Domain)
}

// Violation reports one tuple failing one declared constraint.
type Violation struct {
	Object     string
	Row        int
	Constraint string // rendering of the violated declaration
	Detail     string
}

// String renders the violation.
func (v Violation) String() string {
	return fmt.Sprintf("%s row %d violates %s: %s", v.Object, v.Row, v.Constraint, v.Detail)
}

// Check validates every stored instance of the model's object types
// against the declared knowledge. Missing relations are skipped (a model
// may describe more than one database); unknown attributes in
// constraints are errors.
func Check(m *ker.Model, cat *storage.Catalog) ([]Violation, error) {
	var out []Violation
	for _, o := range m.Types() {
		if len(o.Attrs) == 0 || !cat.Has(o.Name) {
			continue
		}
		rel, err := cat.Get(o.Name)
		if err != nil {
			return nil, err
		}
		vs, err := checkObject(m, o, rel)
		if err != nil {
			return nil, err
		}
		out = append(out, vs...)
	}
	return out, nil
}

func checkObject(m *ker.Model, o *ker.ObjectType, rel *relation.Relation) ([]Violation, error) {
	var out []Violation

	// Domain specifications per attribute.
	type domCheck struct {
		col  int
		desc string
		ok   func(relation.Value) bool
	}
	var domChecks []domCheck
	for _, a := range o.Attrs {
		ci, ok := rel.Schema().Index(a.Name)
		if !ok {
			return nil, fmt.Errorf("integrity: relation %s lacks declared attribute %q", o.Name, a.Name)
		}
		// Walk the derived-domain chain, collecting every spec on the way.
		// The char length is inherited down the chain, so only the most
		// derived declaration produces a check.
		name := a.Domain
		checkedLen := false
		for depth := 0; depth < 16; depth++ {
			d, ok := m.Domain(name)
			if !ok {
				break // object domain: referential checks are out of scope here
			}
			if d.CharLen > 0 && !checkedLen {
				checkedLen = true
				limit := d.CharLen
				domChecks = append(domChecks, domCheck{
					col:  ci,
					desc: fmt.Sprintf("%s domain char[%d]", a.Name, limit),
					ok: func(v relation.Value) bool {
						return v.Kind() != relation.KindString || len(v.Str()) <= limit
					},
				})
			}
			if d.HasRange {
				rng := d.Range
				domChecks = append(domChecks, domCheck{
					col:  ci,
					desc: fmt.Sprintf("%s domain range %s", a.Name, rng),
					ok:   rng.Contains,
				})
			}
			if len(d.Set) > 0 {
				set := d.Set
				domChecks = append(domChecks, domCheck{
					col:  ci,
					desc: fmt.Sprintf("%s domain set (%d values)", a.Name, len(set)),
					ok: func(v relation.Value) bool {
						for _, s := range set {
							if s.Equal(v) {
								return true
							}
						}
						return false
					},
				})
			}
			if d.Kind != ker.DomainDerived {
				break
			}
			name = d.Base
		}
	}

	// With-constraints.
	type condCheck struct {
		col      int
		interval interface{ Contains(relation.Value) bool }
	}
	resolve := func(attr string) (int, error) {
		ci, ok := rel.Schema().Index(attr)
		if !ok {
			return 0, fmt.Errorf("integrity: constraint of %s references unknown attribute %q", o.Name, attr)
		}
		return ci, nil
	}

	type ruleCheck struct {
		desc string
		lhs  []condCheck
		rhs  condCheck
	}
	var rangeChecks []domCheck
	var ruleChecks []ruleCheck
	for _, c := range o.Constraints {
		switch c := c.(type) {
		case ker.DomainRangeConstraint:
			ci, err := resolve(c.Attr)
			if err != nil {
				return nil, err
			}
			rng := c.Range
			rangeChecks = append(rangeChecks, domCheck{
				col:  ci,
				desc: c.String(),
				ok:   rng.Contains,
			})
		case ker.ConstraintRule:
			rc := ruleCheck{desc: c.String()}
			bad := false
			for _, cond := range c.LHS {
				if cond.Var != "" {
					bad = true // role-qualified: not a single-tuple constraint
					break
				}
				ci, err := resolve(cond.Attr)
				if err != nil {
					return nil, err
				}
				rc.lhs = append(rc.lhs, condCheck{col: ci, interval: condInterval(cond)})
			}
			if bad || c.RHS.Var != "" {
				continue
			}
			ci, err := resolve(c.RHS.Attr)
			if err != nil {
				return nil, err
			}
			rc.rhs = condCheck{col: ci, interval: condInterval(c.RHS)}
			ruleChecks = append(ruleChecks, rc)
		case ker.StructureRule:
			// Classification knowledge: exercised by inference, not here.
		}
	}

	for rowNo, tup := range rel.Rows() {
		for _, dc := range append(domChecks, rangeChecks...) {
			v := tup[dc.col]
			if v.IsNull() {
				continue
			}
			if !dc.ok(v) {
				out = append(out, Violation{
					Object: o.Name, Row: rowNo, Constraint: dc.desc,
					Detail: fmt.Sprintf("value %s", v.GoString()),
				})
			}
		}
	ruleLoop:
		for _, rc := range ruleChecks {
			for _, lc := range rc.lhs {
				if tup[lc.col].IsNull() || !lc.interval.Contains(tup[lc.col]) {
					continue ruleLoop
				}
			}
			if tup[rc.rhs.col].IsNull() || !rc.rhs.interval.Contains(tup[rc.rhs.col]) {
				out = append(out, Violation{
					Object: o.Name, Row: rowNo, Constraint: rc.desc,
					Detail: fmt.Sprintf("consequence value %s", tup[rc.rhs.col].GoString()),
				})
			}
		}
	}
	return out, nil
}

// condInterval turns a KER condition into a containment test.
func condInterval(c ker.Cond) interface{ Contains(relation.Value) bool } {
	return intervalOf(c)
}

type valueInterval struct {
	lo, hi relation.Value
}

func (iv valueInterval) Contains(v relation.Value) bool {
	cl, err := v.Compare(iv.lo)
	if err != nil || cl < 0 {
		return false
	}
	ch, err := v.Compare(iv.hi)
	if err != nil || ch > 0 {
		return false
	}
	return true
}

func intervalOf(c ker.Cond) valueInterval {
	return valueInterval{lo: c.Lo, hi: c.Hi}
}
