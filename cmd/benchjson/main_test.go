package main

import (
	"bytes"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: intensional
cpu: Example CPU @ 2.40GHz
BenchmarkInduceShipDB-8   	     100	    123456 ns/op	   45678 B/op	     901 allocs/op
BenchmarkQueryExample1-8  	    5000	       234.5 ns/op
BenchmarkInduceNcSweep/Nc=2-8 	      50	    999999 ns/op	  111111 B/op	    2222 allocs/op
--- BENCH: BenchmarkSomething
    bench_test.go:42: some log line
PASS
ok  	intensional	1.234s
`

func TestParse(t *testing.T) {
	var echo bytes.Buffer
	doc, err := parse(strings.NewReader(sample), &echo)
	if err != nil {
		t.Fatal(err)
	}
	if doc.GOOS != "linux" || doc.GOARCH != "amd64" || doc.Pkg != "intensional" {
		t.Errorf("header = %q %q %q", doc.GOOS, doc.GOARCH, doc.Pkg)
	}
	if len(doc.Results) != 3 {
		t.Fatalf("results = %d, want 3: %+v", len(doc.Results), doc.Results)
	}
	r := doc.Results[0]
	if r.Name != "BenchmarkInduceShipDB" || r.CPUs != 8 || r.Iterations != 100 ||
		r.NsPerOp != 123456 || r.BytesPerOp != 45678 || r.AllocsPerOp != 901 {
		t.Errorf("first result = %+v", r)
	}
	r = doc.Results[1]
	if r.NsPerOp != 234.5 || r.BytesPerOp != 0 || r.AllocsPerOp != 0 {
		t.Errorf("no-benchmem result = %+v", r)
	}
	if doc.Results[2].Name != "BenchmarkInduceNcSweep/Nc=2" {
		t.Errorf("sub-benchmark name = %q", doc.Results[2].Name)
	}
	// Non-result lines pass through for visibility.
	for _, want := range []string{"--- BENCH", "some log line", "PASS", "ok "} {
		if !strings.Contains(echo.String(), want) {
			t.Errorf("echo missing %q: %q", want, echo.String())
		}
	}
}

func TestDiff(t *testing.T) {
	base := &document{Results: []record{
		{Name: "BenchmarkA", NsPerOp: 100, BytesPerOp: 1000, AllocsPerOp: 10},
		{Name: "BenchmarkB", NsPerOp: 100, BytesPerOp: 1000, AllocsPerOp: 10},
		{Name: "BenchmarkGone", NsPerOp: 1},
	}}
	cur := &document{Results: []record{
		// Within threshold on the fatal metrics; ns/op regressed (warn only).
		{Name: "BenchmarkA", NsPerOp: 500, BytesPerOp: 1100, AllocsPerOp: 12},
		// Allocs grew past 25%: fatal.
		{Name: "BenchmarkB", NsPerOp: 100, BytesPerOp: 1000, AllocsPerOp: 20},
		{Name: "BenchmarkNew", NsPerOp: 1},
	}}
	var out bytes.Buffer
	if !diff(base, cur, 25, &out) {
		t.Fatalf("alloc regression not fatal; output:\n%s", out.String())
	}
	for _, want := range []string{
		"FAIL BenchmarkB: allocs/op 10 -> 20",
		"warn BenchmarkA: ns/op",
		"BenchmarkNew: new benchmark",
		"BenchmarkGone: present in baseline",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("diff output missing %q:\n%s", want, out.String())
		}
	}

	var quiet bytes.Buffer
	if diff(base, &document{Results: base.Results}, 25, &quiet) {
		t.Errorf("identical run flagged as regression:\n%s", quiet.String())
	}
}

func TestParseResultRejectsNonResults(t *testing.T) {
	for _, line := range []string{
		"BenchmarkFoo", // bare name, no fields
		"BenchmarkFoo-8 notanumber 1 ns/op",
		"BenchmarkFoo-8 10 fast ns/op",
		"Benchmark log output without numbers here",
	} {
		if _, ok := parseResult(line); ok {
			t.Errorf("parseResult(%q) accepted", line)
		}
	}
}
