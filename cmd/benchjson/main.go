// Command benchjson converts standard `go test -bench` output into
// machine-readable JSON for trend tracking. It reads the textual
// exposition on stdin and writes one JSON document:
//
//	go test -bench Induce -benchmem -run xxx . | benchjson -o BENCH_induce.json
//
// The document carries the run context (goos/goarch/pkg/cpu, taken from
// the benchmark header lines) and one record per result line with the
// benchmark name, the -N CPU suffix split off, the iteration count, and
// ns/op, B/op, allocs/op where present. Lines that are not benchmark
// results (PASS, ok, logging) pass through to stderr so a failing run
// stays visible. Stdlib only, like everything else in this repo.
//
// With -compare BASELINE.json the run is additionally checked against a
// committed snapshot: a benchmark whose allocs/op or B/op grew by more
// than -threshold percent fails the run (exit 1). Those two metrics are
// deterministic, so they compare meaningfully across machines; ns/op
// regressions past the threshold only warn, because wall-clock differs
// between the machine that produced the baseline and the one checking
// it. Benchmarks present on one side only are reported but not fatal.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// record is one benchmark result line.
type record struct {
	Name        string  `json:"name"`
	CPUs        int     `json:"cpus,omitempty"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"nsPerOp"`
	BytesPerOp  int64   `json:"bytesPerOp,omitempty"`
	AllocsPerOp int64   `json:"allocsPerOp,omitempty"`
}

// document is the emitted JSON shape.
type document struct {
	GOOS    string   `json:"goos,omitempty"`
	GOARCH  string   `json:"goarch,omitempty"`
	Pkg     string   `json:"pkg,omitempty"`
	CPU     string   `json:"cpu,omitempty"`
	Results []record `json:"results"`
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	compare := flag.String("compare", "", "baseline JSON to diff against; allocs/op or B/op regressions past -threshold fail the run")
	threshold := flag.Float64("threshold", 25, "allowed regression in percent for -compare")
	flag.Parse()

	doc, err := parse(os.Stdin, os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(doc.Results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark results on stdin")
		os.Exit(1)
	}
	if *compare != "" {
		base, err := load(*compare)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		if regressed := diff(base, doc, *threshold, os.Stderr); regressed {
			os.Exit(1)
		}
	}
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	b = append(b, '\n')
	if *out == "" {
		if *compare != "" {
			return // compare-only invocations keep stdout quiet
		}
		if _, err := os.Stdout.Write(b); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		return
	}
	if err := os.WriteFile(*out, b, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d results to %s\n", len(doc.Results), *out)
}

// load reads a previously emitted document.
func load(path string) (*document, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	doc := &document{}
	if err := json.Unmarshal(b, doc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return doc, nil
}

// diff reports each regression past the threshold and returns whether
// any fatal one (allocs/op or B/op growth) was found.
func diff(base, cur *document, threshold float64, w io.Writer) bool {
	old := make(map[string]record, len(base.Results))
	for _, r := range base.Results {
		old[r.Name] = r
	}
	grew := func(was, now int64) bool {
		return was > 0 && float64(now-was)/float64(was)*100 > threshold
	}
	fatal := false
	for _, r := range cur.Results {
		b, ok := old[r.Name]
		if !ok {
			fmt.Fprintf(w, "benchjson: %s: new benchmark (no baseline)\n", r.Name)
			continue
		}
		delete(old, r.Name)
		if grew(b.AllocsPerOp, r.AllocsPerOp) {
			fmt.Fprintf(w, "benchjson: FAIL %s: allocs/op %d -> %d (>%g%%)\n",
				r.Name, b.AllocsPerOp, r.AllocsPerOp, threshold)
			fatal = true
		}
		if grew(b.BytesPerOp, r.BytesPerOp) {
			fmt.Fprintf(w, "benchjson: FAIL %s: B/op %d -> %d (>%g%%)\n",
				r.Name, b.BytesPerOp, r.BytesPerOp, threshold)
			fatal = true
		}
		if b.NsPerOp > 0 && (r.NsPerOp-b.NsPerOp)/b.NsPerOp*100 > threshold {
			fmt.Fprintf(w, "benchjson: warn %s: ns/op %.0f -> %.0f (>%g%%, advisory across machines)\n",
				r.Name, b.NsPerOp, r.NsPerOp, threshold)
		}
	}
	missing := make([]string, 0, len(old))
	for name := range old {
		missing = append(missing, name)
	}
	sort.Strings(missing)
	for _, name := range missing {
		fmt.Fprintf(w, "benchjson: %s: present in baseline, missing from this run\n", name)
	}
	return fatal
}

// parse reads `go test -bench` output, returning the parsed document.
// Non-result lines are echoed to echo so test failures stay visible.
func parse(r io.Reader, echo io.Writer) (*document, error) {
	doc := &document{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			doc.GOOS = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			doc.GOARCH = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "pkg: "):
			doc.Pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "cpu: "):
			doc.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "Benchmark"):
			rec, ok := parseResult(line)
			if !ok {
				fmt.Fprintln(echo, line)
				continue
			}
			doc.Results = append(doc.Results, rec)
		default:
			if strings.TrimSpace(line) != "" {
				fmt.Fprintln(echo, line)
			}
		}
	}
	return doc, sc.Err()
}

// parseResult parses one result line of the form
//
//	BenchmarkName-8  10  123.4 ns/op  56 B/op  7 allocs/op
//
// returning ok=false for anything that does not fit (e.g. a benchmark
// log line that happens to start with "Benchmark").
func parseResult(line string) (record, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return record{}, false
	}
	var rec record
	rec.Name = fields[0]
	if i := strings.LastIndex(rec.Name, "-"); i > 0 {
		if n, err := strconv.Atoi(rec.Name[i+1:]); err == nil {
			rec.Name, rec.CPUs = rec.Name[:i], n
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return record{}, false
	}
	rec.Iterations = iters
	sawNs := false
	for i := 2; i+1 < len(fields); i += 2 {
		v, unit := fields[i], fields[i+1]
		switch unit {
		case "ns/op":
			f, err := strconv.ParseFloat(v, 64)
			if err != nil {
				return record{}, false
			}
			rec.NsPerOp, sawNs = f, true
		case "B/op":
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return record{}, false
			}
			rec.BytesPerOp = n
		case "allocs/op":
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return record{}, false
			}
			rec.AllocsPerOp = n
		}
	}
	return rec, sawNs
}
