// Command iqp is the interactive intensional query processor: load a
// database, induce rules, and run SQL queries that return both the
// extensional and the intensional answer.
//
// Usage:
//
//	iqp                 # start with the paper's ship test bed
//	iqp -db DIR         # open a saved database directory
//	iqp -db DIR -wal    # durable: WAL-logged mutations, replayed on restart
//	iqp -fleet          # start with a synthetic Table 1 fleet
//
// With -wal, INSERT/UPDATE/DELETE statements typed at the prompt are
// committed to a write-ahead log before they are applied, so a crash
// never loses an acknowledged mutation; .checkpoint folds the log into
// the saved database. Type .help inside the shell for the command list.
package main

import (
	"flag"
	"fmt"
	"os"

	"intensional/internal/core"
	"intensional/internal/ker"
	"intensional/internal/shell"
	"intensional/internal/shipdb"
	"intensional/internal/synth"
)

func main() {
	dbDir := flag.String("db", "", "open a saved database directory")
	wal := flag.Bool("wal", false, "open -db durably: log mutations to a write-ahead log and replay it on startup")
	fleet := flag.Bool("fleet", false, "start with a synthetic Table 1 fleet")
	flag.Parse()

	if err := run(*dbDir, *wal, *fleet); err != nil {
		fmt.Fprintln(os.Stderr, "iqp:", err)
		os.Exit(1)
	}
}

func run(dbDir string, wal, fleet bool) error {
	sys, model, err := openSystem(dbDir, wal, fleet)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := sys.Close(); cerr != nil {
			fmt.Fprintln(os.Stderr, "iqp: close:", cerr)
		}
	}()
	fmt.Println("intensional query processor — type .help for commands")
	return shell.New(sys, model, os.Stdout).Run(os.Stdin)
}

func openSystem(dbDir string, wal, fleet bool) (*core.System, *ker.Model, error) {
	switch {
	case wal:
		if dbDir == "" {
			return nil, nil, fmt.Errorf("-wal requires -db DIR (the WAL lives beside the database directory)")
		}
		sys, err := core.OpenDurable(dbDir, core.DurableOptions{})
		return sys, nil, err
	case dbDir != "":
		sys, err := core.Open(dbDir)
		return sys, nil, err
	case fleet:
		cat := synth.Fleet(synth.FleetConfig{ClassesPerType: 4, ShipsPerClass: 3, Seed: 1})
		d, err := synth.FleetDictionary(cat)
		if err != nil {
			return nil, nil, err
		}
		return core.New(cat, d), nil, nil
	default:
		cat := shipdb.Catalog()
		d, err := shipdb.Dictionary(cat)
		if err != nil {
			return nil, nil, err
		}
		model, err := ker.Parse(shipdb.KERSchema)
		if err != nil {
			return nil, nil, err
		}
		return core.New(cat, d), model, nil
	}
}
