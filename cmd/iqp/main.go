// Command iqp is the interactive intensional query processor: load a
// database, induce rules, and run SQL queries that return both the
// extensional and the intensional answer.
//
// Usage:
//
//	iqp                 # start with the paper's ship test bed
//	iqp -db DIR         # open a saved database directory
//	iqp -db DIR -wal    # durable: WAL-logged mutations, replayed on restart
//	iqp -fleet          # start with a synthetic Table 1 fleet
//	iqp -connect URL    # remote shell against a running iqpd cluster
//	iqp -connect URL -e "SELECT ..."   # one statement, then exit
//
// With -wal, INSERT/UPDATE/DELETE statements typed at the prompt are
// committed to a write-ahead log before they are applied, so a crash
// never loses an acknowledged mutation; .checkpoint folds the log into
// the saved database. Type .help inside the shell for the command list.
//
// With -connect, iqp is a failover-aware client: point it at any
// cluster node. Writes typed at a follower's prompt follow the 421
// redirect to the leader; degraded or rate-limited nodes are retried
// with backoff; and each mutation's read-your-writes token is carried
// on subsequent queries, so the shell always sees its own writes even
// across a live leader handover.
package main

import (
	"flag"
	"fmt"
	"os"

	"intensional/internal/core"
	"intensional/internal/ker"
	"intensional/internal/shell"
	"intensional/internal/shipdb"
	"intensional/internal/synth"
)

func main() {
	dbDir := flag.String("db", "", "open a saved database directory")
	wal := flag.Bool("wal", false, "open -db durably: log mutations to a write-ahead log and replay it on startup")
	fleet := flag.Bool("fleet", false, "start with a synthetic Table 1 fleet")
	connect := flag.String("connect", "", "remote mode: base URL of any node in a running iqpd cluster")
	oneShot := flag.String("e", "", "with -connect: run one SQL statement and exit")
	flag.Parse()

	var err error
	switch {
	case *connect != "":
		err = runRemote(*connect, *oneShot)
	case *oneShot != "":
		err = fmt.Errorf("-e requires -connect URL (one-shot statements run against a serving cluster)")
	default:
		err = run(*dbDir, *wal, *fleet)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "iqp:", err)
		os.Exit(1)
	}
}

func run(dbDir string, wal, fleet bool) error {
	sys, model, err := openSystem(dbDir, wal, fleet)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := sys.Close(); cerr != nil {
			fmt.Fprintln(os.Stderr, "iqp: close:", cerr)
		}
	}()
	fmt.Println("intensional query processor — type .help for commands")
	return shell.New(sys, model, os.Stdout).Run(os.Stdin)
}

func openSystem(dbDir string, wal, fleet bool) (*core.System, *ker.Model, error) {
	switch {
	case wal:
		if dbDir == "" {
			return nil, nil, fmt.Errorf("-wal requires -db DIR (the WAL lives beside the database directory)")
		}
		sys, err := core.OpenDurable(dbDir, core.DurableOptions{})
		return sys, nil, err
	case dbDir != "":
		sys, err := core.Open(dbDir)
		return sys, nil, err
	case fleet:
		cat := synth.Fleet(synth.FleetConfig{ClassesPerType: 4, ShipsPerClass: 3, Seed: 1})
		d, err := synth.FleetDictionary(cat)
		if err != nil {
			return nil, nil, err
		}
		return core.New(cat, d), nil, nil
	default:
		cat := shipdb.Catalog()
		d, err := shipdb.Dictionary(cat)
		if err != nil {
			return nil, nil, err
		}
		model, err := ker.Parse(shipdb.KERSchema)
		if err != nil {
			return nil, nil, err
		}
		return core.New(cat, d), model, nil
	}
}
