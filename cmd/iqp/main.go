// Command iqp is the interactive intensional query processor: load a
// database, induce rules, and run SQL queries that return both the
// extensional and the intensional answer.
//
// Usage:
//
//	iqp             # start with the paper's ship test bed
//	iqp -db DIR     # open a saved database directory
//	iqp -fleet      # start with a synthetic Table 1 fleet
//
// Type .help inside the shell for the command list.
package main

import (
	"flag"
	"fmt"
	"os"

	"intensional/internal/core"
	"intensional/internal/ker"
	"intensional/internal/shell"
	"intensional/internal/shipdb"
	"intensional/internal/synth"
)

func main() {
	dbDir := flag.String("db", "", "open a saved database directory")
	fleet := flag.Bool("fleet", false, "start with a synthetic Table 1 fleet")
	flag.Parse()

	sys, model, err := openSystem(*dbDir, *fleet)
	if err != nil {
		fmt.Fprintln(os.Stderr, "iqp:", err)
		os.Exit(1)
	}
	fmt.Println("intensional query processor — type .help for commands")
	if err := shell.New(sys, model, os.Stdout).Run(os.Stdin); err != nil {
		fmt.Fprintln(os.Stderr, "iqp:", err)
		os.Exit(1)
	}
}

func openSystem(dbDir string, fleet bool) (*core.System, *ker.Model, error) {
	switch {
	case dbDir != "":
		sys, err := core.Open(dbDir)
		return sys, nil, err
	case fleet:
		cat := synth.Fleet(synth.FleetConfig{ClassesPerType: 4, ShipsPerClass: 3, Seed: 1})
		d, err := synth.FleetDictionary(cat)
		if err != nil {
			return nil, nil, err
		}
		return core.New(cat, d), nil, nil
	default:
		cat := shipdb.Catalog()
		d, err := shipdb.Dictionary(cat)
		if err != nil {
			return nil, nil, err
		}
		model, err := ker.Parse(shipdb.KERSchema)
		if err != nil {
			return nil, nil, err
		}
		return core.New(cat, d), model, nil
	}
}
