// Remote mode: iqp as a failover-aware client of a replicated serving
// tier. -connect points the shell at any node; writes sent to a
// follower follow the 421 redirect to the leader, degraded nodes are
// retried with backoff, and read-your-writes tokens from mutations ride
// along on subsequent queries automatically — a leader handover is
// invisible at the prompt.
package main

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"os"
	"strings"
	"text/tabwriter"
	"time"

	"intensional/internal/replica"
)

// remoteTimeout bounds one statement's round trips, including any
// redirects and retries the client absorbs along the way.
const remoteTimeout = 30 * time.Second

// runRemote drives the remote REPL (or a single -e statement) against
// the cluster node at base.
func runRemote(base, oneShot string) error {
	c := replica.NewFailoverClient(base)
	c.Logf = func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "iqp: "+format+"\n", args...)
	}
	if oneShot != "" {
		return runStatement(c, os.Stdout, oneShot)
	}
	ctx, cancel := context.WithTimeout(context.Background(), remoteTimeout)
	h, err := c.Health(ctx)
	cancel()
	if err != nil {
		return fmt.Errorf("connect %s: %w", base, err)
	}
	fmt.Printf("connected to %s (%s, version %d) — type .help for commands\n", c.Target(), h.Mode, h.Version)
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for {
		fmt.Print("iqp> ")
		if !sc.Scan() {
			fmt.Println()
			return sc.Err()
		}
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
			continue
		case line == ".quit", line == ".exit":
			return nil
		case line == ".help":
			fmt.Print(remoteHelp)
			continue
		case line == ".target":
			fmt.Println(c.Target())
			continue
		case line == ".health":
			ctx, cancel := context.WithTimeout(context.Background(), remoteTimeout)
			h, err := c.Health(ctx)
			cancel()
			if err != nil {
				fmt.Fprintln(os.Stderr, "iqp:", err)
				continue
			}
			fmt.Printf("%s: mode %s, version %d, seq %d\n", c.Target(), h.Mode, h.Version, h.WalSeq)
			continue
		case strings.HasPrefix(line, "."):
			fmt.Fprintf(os.Stderr, "iqp: unknown command %s (try .help)\n", line)
			continue
		}
		if err := runStatement(c, os.Stdout, line); err != nil {
			fmt.Fprintln(os.Stderr, "iqp:", err)
		}
	}
}

const remoteHelp = `remote commands:
  .health        current target's health
  .target        which node the client talks to
  .quit          leave
any other line is SQL: SELECT runs a query (intensional answer
included); INSERT/UPDATE/DELETE mutate the leader, wherever it is.
`

// runStatement sends one SQL statement to the right endpoint and
// renders the response.
func runStatement(c *replica.FailoverClient, w io.Writer, sql string) error {
	ctx, cancel := context.WithTimeout(context.Background(), remoteTimeout)
	defer cancel()
	if isMutation(sql) {
		res, err := c.Mutate(ctx, []string{sql})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "ok (version %d, seq %d", res.Version, res.WalSeq)
		if res.Stale > 0 {
			fmt.Fprintf(w, ", %d rule(s) now stale", res.Stale)
		}
		fmt.Fprintln(w, ")")
		if res.Warning != "" {
			fmt.Fprintln(w, "warning:", res.Warning)
		}
		return nil
	}
	res, err := c.Query(ctx, sql, "")
	if err != nil {
		return err
	}
	printQueryResult(w, res)
	return nil
}

func isMutation(sql string) bool {
	head := strings.ToUpper(strings.Fields(sql + " x")[0])
	return head == "INSERT" || head == "UPDATE" || head == "DELETE"
}

func printQueryResult(w io.Writer, res *replica.QueryResult) {
	for _, line := range res.Intensional {
		fmt.Fprintln(w, line)
	}
	if ext := res.Extensional; ext != nil && len(ext.Columns) > 0 {
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		var hdr []string
		for _, col := range ext.Columns {
			hdr = append(hdr, col.Name)
		}
		fmt.Fprintln(tw, strings.Join(hdr, "\t"))
		for _, row := range ext.Rows {
			cells := make([]string, len(row))
			for i, v := range row {
				switch x := v.(type) {
				case nil:
					cells[i] = "NULL"
				case string:
					cells[i] = x
				default:
					cells[i] = fmt.Sprint(x)
				}
			}
			fmt.Fprintln(tw, strings.Join(cells, "\t"))
		}
		tw.Flush() //ilint:allow errdrop — terminal output; nothing to do about a failed flush
	}
	fmt.Fprintf(w, "%d row(s), version %d\n", res.RowCount, res.Version)
}
