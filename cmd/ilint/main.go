// Command ilint is the repo's static-analysis driver: it loads every
// package in the module with the standard library's go/parser and
// go/types (no external tooling), runs the repo-specific invariant
// passes, and exits non-zero on any finding.
//
// Usage:
//
//	go run ./cmd/ilint ./...             # analyze the whole module
//	go run ./cmd/ilint -list             # describe the passes
//	go run ./cmd/ilint -p errdrop ./...  # run a single pass
//	go run ./cmd/ilint -json lint.json -baseline lint-baseline.json ./...
//	go run ./cmd/ilint -write-baseline lint-baseline.json ./...
//
// Passes:
//
//	lockguard   fields annotated `// guarded by <mu>` are only accessed
//	            in functions that acquire that mutex
//	maporder    map iteration must not feed ordered output (escaping
//	            appends, printed lines) without an intervening sort
//	rowalias    relation row slices are not mutated outside
//	            internal/relation's copy-on-write API
//	errdrop     error results are not silently discarded
//	faultseam   internal/storage and internal/wal mutate the filesystem
//	            only through the injected fault.FS seam, never package os
//	ctxflow     blocking work reachable from a request entrypoint must
//	            receive and honor the request's context
//	snapfreeze  published snapshot/plan/response values are immutable;
//	            build fresh and swap, never mutate in place
//	fsyncorder  commit acks in wal/storage must be dominated by the
//	            fsync of the bytes they acknowledge
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"intensional/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "describe the passes and exit")
	passNames := flag.String("p", "", "comma-separated pass names to run (default: all)")
	jsonPath := flag.String("json", "", "also write findings as JSON to this file")
	baselinePath := flag.String("baseline", "", "suppress findings recorded in this baseline file")
	writeBaseline := flag.String("write-baseline", "", "write current findings to this baseline file and exit")
	flag.Parse()

	if *list {
		for _, p := range lint.Passes() {
			fmt.Printf("%-11s %s\n", p.Name, p.Doc)
		}
		return
	}

	passes := lint.Passes()
	if *passNames != "" {
		passes = passes[:0:0]
		for _, name := range strings.Split(*passNames, ",") {
			p, ok := lint.PassByName(strings.TrimSpace(name))
			if !ok {
				fmt.Fprintf(os.Stderr, "ilint: unknown pass %q\n", name)
				os.Exit(2)
			}
			passes = append(passes, p)
		}
	}

	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "ilint:", err)
		os.Exit(2)
	}
	// Package patterns are accepted for `go run`-style invocation;
	// the loader always analyzes the whole module, so `./...` (or no
	// argument) is the supported form.
	for _, arg := range flag.Args() {
		if arg != "./..." && arg != "..." {
			fmt.Fprintf(os.Stderr, "ilint: unsupported pattern %q (only ./... is supported)\n", arg)
			os.Exit(2)
		}
	}

	prog, err := lint.Load(lint.Config{Dir: root})
	if err != nil {
		fmt.Fprintln(os.Stderr, "ilint:", err)
		os.Exit(2)
	}
	diags := prog.Run(passes...)

	// Module-relative paths everywhere downstream — terminal output,
	// the JSON artifact, and baseline keys — so results are stable
	// across checkouts.
	relativize := func(name string) string {
		if rel, err := filepath.Rel(root, name); err == nil && !strings.HasPrefix(rel, "..") {
			return filepath.ToSlash(rel)
		}
		return name
	}
	for i := range diags {
		diags[i].Pos.Filename = relativize(diags[i].Pos.Filename)
		for j := range diags[i].Related {
			diags[i].Related[j].Pos.Filename = relativize(diags[i].Related[j].Pos.Filename)
		}
	}

	if *writeBaseline != "" {
		if err := lint.WriteBaseline(*writeBaseline, diags); err != nil {
			fmt.Fprintln(os.Stderr, "ilint:", err)
			os.Exit(2)
		}
		fmt.Printf("ilint: wrote %s (%d finding(s))\n", *writeBaseline, len(diags))
		return
	}

	var stale []lint.BaselineEntry
	if *baselinePath != "" {
		base, err := lint.LoadBaseline(*baselinePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ilint:", err)
			os.Exit(2)
		}
		diags, stale = base.Apply(diags)
	}

	if *jsonPath != "" {
		data, err := lint.MarshalDiagnostics(diags)
		if err == nil {
			err = os.WriteFile(*jsonPath, data, 0o644)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "ilint:", err)
			os.Exit(2)
		}
	}

	for _, d := range diags {
		fmt.Println(d)
		for _, r := range d.Related {
			fmt.Printf("\t%s:%d:%d: %s\n", r.Pos.Filename, r.Pos.Line, r.Pos.Column, r.Message)
		}
	}
	for _, e := range stale {
		fmt.Fprintf(os.Stderr, "ilint: stale baseline entry: [%s] %s: %q (x%d) no longer matches any finding; regenerate with -write-baseline\n",
			e.Pass, e.File, e.Message, e.Count)
	}
	if len(diags) > 0 || len(stale) > 0 {
		fmt.Fprintf(os.Stderr, "ilint: %d finding(s), %d stale baseline entr(ies)\n", len(diags), len(stale))
		os.Exit(1)
	}
}

// moduleRoot walks up from the working directory to the enclosing
// go.mod, so ilint works from any subdirectory of the module.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
