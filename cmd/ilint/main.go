// Command ilint is the repo's static-analysis driver: it loads every
// package in the module with the standard library's go/parser and
// go/types (no external tooling), runs the repo-specific invariant
// passes, and exits non-zero on any finding.
//
// Usage:
//
//	go run ./cmd/ilint ./...          # analyze the whole module
//	go run ./cmd/ilint -list          # describe the passes
//	go run ./cmd/ilint -p errdrop ./...  # run a single pass
//
// Passes:
//
//	lockguard  fields annotated `// guarded by <mu>` are only accessed
//	           in functions that acquire that mutex
//	maporder   map iteration must not feed ordered output (escaping
//	           appends, printed lines) without an intervening sort
//	rowalias   relation row slices are not mutated outside
//	           internal/relation's copy-on-write API
//	errdrop    error results are not silently discarded
//	faultseam  internal/storage and internal/wal mutate the filesystem
//	           only through the injected fault.FS seam, never package os
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"intensional/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "describe the passes and exit")
	passNames := flag.String("p", "", "comma-separated pass names to run (default: all)")
	flag.Parse()

	if *list {
		for _, p := range lint.Passes() {
			fmt.Printf("%-10s %s\n", p.Name, p.Doc)
		}
		return
	}

	passes := lint.Passes()
	if *passNames != "" {
		passes = passes[:0:0]
		for _, name := range strings.Split(*passNames, ",") {
			p, ok := lint.PassByName(strings.TrimSpace(name))
			if !ok {
				fmt.Fprintf(os.Stderr, "ilint: unknown pass %q\n", name)
				os.Exit(2)
			}
			passes = append(passes, p)
		}
	}

	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "ilint:", err)
		os.Exit(2)
	}
	// Package patterns are accepted for `go run`-style invocation;
	// the loader always analyzes the whole module, so `./...` (or no
	// argument) is the supported form.
	for _, arg := range flag.Args() {
		if arg != "./..." && arg != "..." {
			fmt.Fprintf(os.Stderr, "ilint: unsupported pattern %q (only ./... is supported)\n", arg)
			os.Exit(2)
		}
	}

	prog, err := lint.Load(lint.Config{Dir: root})
	if err != nil {
		fmt.Fprintln(os.Stderr, "ilint:", err)
		os.Exit(2)
	}
	diags := prog.Run(passes...)
	for _, d := range diags {
		// Print module-relative paths so output is stable across checkouts.
		if rel, err := filepath.Rel(root, d.Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			d.Pos.Filename = rel
		}
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "ilint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

// moduleRoot walks up from the working directory to the enclosing
// go.mod, so ilint works from any subdirectory of the module.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
