// Command kerc parses and validates a KER schema definition (the
// Appendix A grammar) and renders it as the textual KER diagrams of
// Figures 1–5.
//
// Usage:
//
//	kerc FILE            # parse and render a schema file
//	kerc -ship           # render the built-in Appendix B ship schema
//	kerc -hier T FILE    # render only the hierarchy rooted at type T
//	kerc -check DIR FILE # validate a saved database against the schema
package main

import (
	"flag"
	"fmt"
	"os"

	"intensional/internal/integrity"
	"intensional/internal/ker"
	"intensional/internal/shipdb"
	"intensional/internal/storage"
)

func main() {
	ship := flag.Bool("ship", false, "use the built-in Appendix B ship schema")
	hier := flag.String("hier", "", "render only the hierarchy rooted at this type")
	check := flag.String("check", "", "validate the saved database in this directory against the schema")
	flag.Parse()

	var src string
	switch {
	case *ship:
		src = shipdb.KERSchema
	case flag.NArg() == 1:
		data, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "kerc:", err)
			os.Exit(1)
		}
		src = string(data)
	default:
		fmt.Fprintln(os.Stderr, "usage: kerc [-ship] [-hier TYPE] [FILE]")
		os.Exit(2)
	}

	m, err := ker.Parse(src)
	if err != nil {
		fmt.Fprintln(os.Stderr, "kerc:", err)
		os.Exit(1)
	}
	if *check != "" {
		cat, err := storage.Load(*check)
		if err != nil {
			fmt.Fprintln(os.Stderr, "kerc:", err)
			os.Exit(1)
		}
		vs, err := integrity.Check(m, cat)
		if err != nil {
			fmt.Fprintln(os.Stderr, "kerc:", err)
			os.Exit(1)
		}
		if len(vs) == 0 {
			fmt.Println("database satisfies every declared constraint")
			return
		}
		for _, v := range vs {
			fmt.Println(v)
		}
		os.Exit(1)
	}
	if *hier != "" {
		out := m.RenderHierarchy(*hier)
		if out == "" {
			fmt.Fprintf(os.Stderr, "kerc: no object type %q\n", *hier)
			os.Exit(1)
		}
		fmt.Print(out)
		return
	}
	fmt.Print(m.RenderModel())
}
