// Command iqpd is the intensional query processing daemon: it serves
// extensional and intensional answers over a stdlib-only HTTP/JSON API,
// handling any number of concurrent queries while rule induction
// installs new knowledge snapshots atomically.
//
// Usage:
//
//	iqpd                     # serve the paper's ship test bed on :8473
//	iqpd -db DIR             # serve a saved database directory
//	iqpd -db DIR -wal        # durable: WAL-logged mutations, replayed on restart
//	iqpd -fleet              # serve a synthetic Table 1 fleet
//	iqpd -addr :9000 -nc 2   # custom listen address and pruning threshold
//
// Endpoints: POST /query, POST /explain, POST /mutate, POST /induce,
// POST /maintain, GET /rules, GET /healthz, GET /metrics. /explain
// returns the typed execution plan — access paths with cardinality
// estimates, join order, and the rule base's semantic rewrites —
// without executing the query. Unless -no-induce is given,
// rules are induced once at startup so the first query already has an
// intensional answer. With -wal, committed mutations survive crashes
// (replayed from the write-ahead log on restart) and -checkpoint-bytes
// bounds the log by folding it into the saved database. -auto-maintain
// re-inducts stale rule schemes in the background after mutations.
// SIGINT/SIGTERM drain in-flight requests before exit.
//
// The server bounds concurrency rather than dying under it:
// -max-inflight requests are served at once, up to -max-queue more wait
// at most -queue-wait, and the overflow is refused fast with 429/503 +
// Retry-After. When the WAL repeatedly fails, the system degrades to
// read-only — queries keep serving while mutations get 503s and
// /healthz reports mode "degraded:read-only". Handler panics are
// contained to a 500 on the one request and logged with a stack trace.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"intensional/internal/core"
	"intensional/internal/induct"
	"intensional/internal/server"
	"intensional/internal/shipdb"
	"intensional/internal/synth"
)

func main() {
	addr := flag.String("addr", ":8473", "listen address")
	dbDir := flag.String("db", "", "serve a saved database directory")
	fleet := flag.Bool("fleet", false, "serve a synthetic Table 1 fleet")
	nc := flag.Int("nc", 3, "rule pruning threshold for the startup induction")
	workers := flag.Int("workers", 0, "induction worker goroutines (0 = GOMAXPROCS)")
	noInduce := flag.Bool("no-induce", false, "skip the startup induction")
	wal := flag.Bool("wal", false, "open -db durably: log mutations to a write-ahead log and replay it on startup")
	checkpointBytes := flag.Int64("checkpoint-bytes", 0, "auto-checkpoint when the WAL exceeds this many bytes (0 = never)")
	autoMaintain := flag.Bool("auto-maintain", false, "re-induct stale rule schemes in the background after mutations")
	queryTimeout := flag.Duration("query-timeout", 10*time.Second, "per-request deadline for queries")
	induceTimeout := flag.Duration("induce-timeout", 2*time.Minute, "per-request deadline for /induce")
	maxInFlight := flag.Int("max-inflight", 0, "concurrent requests served before queueing (0 = default 64)")
	maxQueue := flag.Int("max-queue", 0, "queued requests before 429s (0 = default 2×max-inflight)")
	queueWait := flag.Duration("queue-wait", 0, "longest a request waits in the queue before a 503 (0 = default 1s)")
	flag.Parse()

	cfg := config{
		addr: *addr, dbDir: *dbDir, fleet: *fleet,
		nc: *nc, workers: *workers, noInduce: *noInduce,
		wal: *wal, checkpointBytes: *checkpointBytes, autoMaintain: *autoMaintain,
		queryTimeout: *queryTimeout, induceTimeout: *induceTimeout,
		maxInFlight: *maxInFlight, maxQueue: *maxQueue, queueWait: *queueWait,
	}
	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "iqpd:", err)
		os.Exit(1)
	}
}

type config struct {
	addr, dbDir                 string
	fleet, noInduce             bool
	nc, workers                 int
	wal, autoMaintain           bool
	checkpointBytes             int64
	queryTimeout, induceTimeout time.Duration
	maxInFlight, maxQueue       int
	queueWait                   time.Duration
}

func run(cfg config) error {
	sys, err := openSystem(cfg)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := sys.Close(); cerr != nil {
			fmt.Fprintln(os.Stderr, "iqpd: close:", cerr)
		}
	}()
	if cfg.autoMaintain {
		sys.StartAutoMaintain(induct.Options{Nc: cfg.nc, Workers: cfg.workers})
	}
	if !cfg.noInduce {
		start := time.Now()
		set, err := sys.Induce(induct.Options{Nc: cfg.nc, Workers: cfg.workers})
		if err != nil {
			return fmt.Errorf("startup induction: %w", err)
		}
		fmt.Fprintf(os.Stderr, "iqpd: induced %d rules in %v (version %d)\n",
			set.Len(), time.Since(start).Round(time.Millisecond), sys.Version())
	}

	srv := server.New(sys, server.Options{
		QueryTimeout:  cfg.queryTimeout,
		InduceTimeout: cfg.induceTimeout,
		AccessLog:     os.Stderr,
		ErrorLog:      os.Stderr,
		MaxInFlight:   cfg.maxInFlight,
		MaxQueue:      cfg.maxQueue,
		QueueWait:     cfg.queueWait,
	})
	httpSrv := &http.Server{
		Addr:              cfg.addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "iqpd: serving %d relations on %s\n", sys.Catalog().Len(), cfg.addr)
		errc <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		stop()
		fmt.Fprintln(os.Stderr, "iqpd: shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			return fmt.Errorf("shutdown: %w", err)
		}
		if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		return nil
	}
}

func openSystem(cfg config) (*core.System, error) {
	switch {
	case cfg.wal:
		if cfg.dbDir == "" {
			return nil, fmt.Errorf("-wal requires -db DIR (the WAL lives beside the database directory)")
		}
		return core.OpenDurable(cfg.dbDir, core.DurableOptions{CheckpointBytes: cfg.checkpointBytes})
	case cfg.dbDir != "":
		return core.Open(cfg.dbDir)
	case cfg.fleet:
		cat := synth.Fleet(synth.FleetConfig{ClassesPerType: 4, ShipsPerClass: 3, Seed: 1})
		d, err := synth.FleetDictionary(cat)
		if err != nil {
			return nil, err
		}
		return core.New(cat, d), nil
	default:
		cat := shipdb.Catalog()
		d, err := shipdb.Dictionary(cat)
		if err != nil {
			return nil, err
		}
		return core.New(cat, d), nil
	}
}
