// Command iqpd is the intensional query processing daemon: it serves
// extensional and intensional answers over a stdlib-only HTTP/JSON API,
// handling any number of concurrent queries while rule induction
// installs new knowledge snapshots atomically.
//
// Usage:
//
//	iqpd                     # serve the paper's ship test bed on :8473
//	iqpd -db DIR             # serve a saved database directory
//	iqpd -fleet              # serve a synthetic Table 1 fleet
//	iqpd -addr :9000 -nc 2   # custom listen address and pruning threshold
//
// Endpoints: POST /query, POST /induce, GET /rules, GET /healthz,
// GET /metrics. Unless -no-induce is given, rules are induced once at
// startup so the first query already has an intensional answer.
// SIGINT/SIGTERM drain in-flight requests before exit.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"intensional/internal/core"
	"intensional/internal/induct"
	"intensional/internal/server"
	"intensional/internal/shipdb"
	"intensional/internal/synth"
)

func main() {
	addr := flag.String("addr", ":8473", "listen address")
	dbDir := flag.String("db", "", "serve a saved database directory")
	fleet := flag.Bool("fleet", false, "serve a synthetic Table 1 fleet")
	nc := flag.Int("nc", 3, "rule pruning threshold for the startup induction")
	workers := flag.Int("workers", 0, "induction worker goroutines (0 = GOMAXPROCS)")
	noInduce := flag.Bool("no-induce", false, "skip the startup induction")
	queryTimeout := flag.Duration("query-timeout", 10*time.Second, "per-request deadline for queries")
	induceTimeout := flag.Duration("induce-timeout", 2*time.Minute, "per-request deadline for /induce")
	flag.Parse()

	if err := run(*addr, *dbDir, *fleet, *nc, *workers, *noInduce, *queryTimeout, *induceTimeout); err != nil {
		fmt.Fprintln(os.Stderr, "iqpd:", err)
		os.Exit(1)
	}
}

func run(addr, dbDir string, fleet bool, nc, workers int, noInduce bool, queryTimeout, induceTimeout time.Duration) error {
	sys, err := openSystem(dbDir, fleet)
	if err != nil {
		return err
	}
	if !noInduce {
		start := time.Now()
		set, err := sys.Induce(induct.Options{Nc: nc, Workers: workers})
		if err != nil {
			return fmt.Errorf("startup induction: %w", err)
		}
		fmt.Fprintf(os.Stderr, "iqpd: induced %d rules in %v (version %d)\n",
			set.Len(), time.Since(start).Round(time.Millisecond), sys.Version())
	}

	srv := server.New(sys, server.Options{
		QueryTimeout:  queryTimeout,
		InduceTimeout: induceTimeout,
		AccessLog:     os.Stderr,
	})
	httpSrv := &http.Server{
		Addr:              addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "iqpd: serving %d relations on %s\n", sys.Catalog().Len(), addr)
		errc <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		stop()
		fmt.Fprintln(os.Stderr, "iqpd: shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			return fmt.Errorf("shutdown: %w", err)
		}
		if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		return nil
	}
}

func openSystem(dbDir string, fleet bool) (*core.System, error) {
	switch {
	case dbDir != "":
		return core.Open(dbDir)
	case fleet:
		cat := synth.Fleet(synth.FleetConfig{ClassesPerType: 4, ShipsPerClass: 3, Seed: 1})
		d, err := synth.FleetDictionary(cat)
		if err != nil {
			return nil, err
		}
		return core.New(cat, d), nil
	default:
		cat := shipdb.Catalog()
		d, err := shipdb.Dictionary(cat)
		if err != nil {
			return nil, err
		}
		return core.New(cat, d), nil
	}
}
