// Command iqpd is the intensional query processing daemon: it serves
// extensional and intensional answers over a stdlib-only HTTP/JSON API,
// handling any number of concurrent queries while rule induction
// installs new knowledge snapshots atomically.
//
// Usage:
//
//	iqpd                     # serve the paper's ship test bed on :8473
//	iqpd -db DIR             # serve a saved database directory
//	iqpd -db DIR -wal        # durable: WAL-logged mutations, replayed on restart
//	iqpd -fleet              # serve a synthetic Table 1 fleet
//	iqpd -addr :9000 -nc 2   # custom listen address and pruning threshold
//
// Replication — one leader accepts writes and streams its WAL; any
// number of followers replay it and serve reads:
//
//	iqpd -db d1 -wal -addr :8473                                  # leader
//	iqpd -role follower -leader http://127.0.0.1:8473 -db d2      # follower
//	iqpd -cluster-config cluster.json -node-id iqp-2 -db d2       # role from config, live
//
// A follower is durable by construction (its replica directory holds a
// WAL and checkpoints), serves the read API, answers writes with 421
// pointing at the leader, and reports its replication state in
// /healthz ("follower:ready", "follower:catching-up", ...) and
// /metrics. Mutate responses on the leader carry a read-your-writes
// token; pass it as the /query "token" field on any replica to wait
// for that write to be visible there.
//
// With -cluster-config the file is watched (every -cluster-watch) and
// role changes apply without a restart: rewrite the file naming a new
// leader and the old leader demotes — refusing until the successor has
// acknowledged every committed record — while the successor drains the
// last records and promotes. Followers re-point mid-flight. The
// leader's /metrics carries the fan-out table: each follower's
// acknowledged sequence, lag, and bootstrap volume.
//
// Endpoints: POST /query, POST /explain, POST /mutate, POST /induce,
// POST /maintain, GET /rules, GET /healthz, GET /metrics. /explain
// returns the typed execution plan — access paths with cardinality
// estimates, join order, and the rule base's semantic rewrites —
// without executing the query. Unless -no-induce is given,
// rules are induced once at startup so the first query already has an
// intensional answer. With -wal, committed mutations survive crashes
// (replayed from the write-ahead log on restart) and -checkpoint-bytes
// bounds the log by folding it into the saved database. -auto-maintain
// re-inducts stale rule schemes in the background after mutations.
// SIGINT/SIGTERM drain in-flight requests before exit.
//
// The server bounds concurrency rather than dying under it:
// -max-inflight requests are served at once, up to -max-queue more wait
// at most -queue-wait, and the overflow is refused fast with 429/503 +
// Retry-After. When the WAL repeatedly fails, the system degrades to
// read-only — queries keep serving while mutations get 503s and
// /healthz reports mode "degraded:read-only". Handler panics are
// contained to a 500 on the one request and logged with a stack trace.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"intensional/internal/cluster"
	"intensional/internal/core"
	"intensional/internal/induct"
	"intensional/internal/replica"
	"intensional/internal/server"
	"intensional/internal/shipdb"
	"intensional/internal/synth"
)

func main() {
	addr := flag.String("addr", ":8473", "listen address")
	dbDir := flag.String("db", "", "serve a saved database directory")
	fleet := flag.Bool("fleet", false, "serve a synthetic Table 1 fleet")
	nc := flag.Int("nc", 3, "rule pruning threshold for the startup induction")
	workers := flag.Int("workers", 0, "induction worker goroutines (0 = GOMAXPROCS)")
	noInduce := flag.Bool("no-induce", false, "skip the startup induction")
	wal := flag.Bool("wal", false, "open -db durably: log mutations to a write-ahead log and replay it on startup")
	checkpointBytes := flag.Int64("checkpoint-bytes", 0, "auto-checkpoint when the WAL exceeds this many bytes (0 = never)")
	autoMaintain := flag.Bool("auto-maintain", false, "re-induct stale rule schemes in the background after mutations")
	queryTimeout := flag.Duration("query-timeout", 10*time.Second, "per-request deadline for queries")
	induceTimeout := flag.Duration("induce-timeout", 2*time.Minute, "per-request deadline for /induce")
	maxInFlight := flag.Int("max-inflight", 0, "concurrent requests served before queueing (0 = default 64)")
	maxQueue := flag.Int("max-queue", 0, "queued requests before 429s (0 = default 2×max-inflight)")
	queueWait := flag.Duration("queue-wait", 0, "longest a request waits in the queue before a 503 (0 = default 1s)")
	role := flag.String("role", "", "cluster role: leader or follower (default leader)")
	leader := flag.String("leader", "", "leader base URL this follower streams from")
	clusterConfig := flag.String("cluster-config", "", "cluster membership JSON file; with -node-id, supplies this node's role and the leader address, and is watched for live role changes")
	nodeID := flag.String("node-id", "", "this node's id within -cluster-config")
	clusterWatch := flag.Duration("cluster-watch", cluster.DefaultWatchInterval, "how often -cluster-config is polled for membership changes")
	flag.Parse()

	cfg := config{
		addr: *addr, dbDir: *dbDir, fleet: *fleet,
		nc: *nc, workers: *workers, noInduce: *noInduce,
		wal: *wal, checkpointBytes: *checkpointBytes, autoMaintain: *autoMaintain,
		queryTimeout: *queryTimeout, induceTimeout: *induceTimeout,
		maxInFlight: *maxInFlight, maxQueue: *maxQueue, queueWait: *queueWait,
		role: *role, leaderAddr: *leader, clusterConfig: *clusterConfig, nodeID: *nodeID,
		clusterWatch: *clusterWatch,
	}
	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "iqpd:", err)
		os.Exit(1)
	}
}

type config struct {
	addr, dbDir                 string
	fleet, noInduce             bool
	nc, workers                 int
	wal, autoMaintain           bool
	checkpointBytes             int64
	queryTimeout, induceTimeout time.Duration
	maxInFlight, maxQueue       int
	queueWait                   time.Duration

	role, leaderAddr      string
	clusterConfig, nodeID string
	clusterWatch          time.Duration
}

// resolveRole determines this node's role and the leader's address from
// the flags: -cluster-config/-node-id when given (the file is the
// authority), otherwise -role/-leader, defaulting to a standalone
// leader.
func resolveRole(cfg config) (cluster.Role, string, error) {
	if cfg.clusterConfig != "" {
		if cfg.nodeID == "" {
			return "", "", fmt.Errorf("-cluster-config requires -node-id to identify this node")
		}
		c, err := cluster.NewFileStore(cfg.clusterConfig).Load()
		if err != nil {
			return "", "", err
		}
		self, ok := c.Node(cfg.nodeID)
		if !ok {
			return "", "", fmt.Errorf("node %q is not in %s", cfg.nodeID, cfg.clusterConfig)
		}
		lead, _ := c.Leader()
		if cfg.role != "" {
			r, err := cluster.ParseRole(cfg.role)
			if err != nil {
				return "", "", err
			}
			if r != self.Role {
				return "", "", fmt.Errorf("-role %s contradicts %s, which names %q a %s", r, cfg.clusterConfig, self.ID, self.Role)
			}
		}
		return self.Role, lead.Addr, nil
	}
	if cfg.role == "" {
		return cluster.RoleLeader, cfg.leaderAddr, nil
	}
	r, err := cluster.ParseRole(cfg.role)
	if err != nil {
		return "", "", err
	}
	if r == cluster.RoleFollower && cfg.leaderAddr == "" {
		return "", "", fmt.Errorf("-role follower requires -leader URL (or -cluster-config)")
	}
	return r, cfg.leaderAddr, nil
}

func run(cfg config) error {
	role, leaderAddr, err := resolveRole(cfg)
	if err != nil {
		return err
	}
	opts := server.Options{
		QueryTimeout:  cfg.queryTimeout,
		InduceTimeout: cfg.induceTimeout,
		AccessLog:     os.Stderr,
		ErrorLog:      os.Stderr,
		MaxInFlight:   cfg.maxInFlight,
		MaxQueue:      cfg.maxQueue,
		QueueWait:     cfg.queueWait,
	}

	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "iqpd: "+format+"\n", args...)
	}

	var sys *core.System
	if cfg.clusterConfig != "" {
		// Cluster mode: the configuration file is the authority for this
		// node's role, now and whenever it changes. A Node controller
		// performs live transitions — promote, fenced demote, leader
		// re-point — while the file watcher feeds it; no restart needed.
		if cfg.dbDir == "" {
			return fmt.Errorf("-cluster-config requires -db DIR (roles can change live, so every node keeps a durable WAL)")
		}
		var f *replica.Follower
		if role == cluster.RoleFollower {
			if cfg.autoMaintain {
				return fmt.Errorf("-auto-maintain is a write-path worker; followers replay the leader's rule maintenance instead")
			}
			f, err = replica.Open(replica.Options{
				Dir:             cfg.dbDir,
				Leader:          leaderAddr,
				NodeID:          cfg.nodeID,
				CheckpointBytes: cfg.checkpointBytes,
				Logf:            logf,
			})
			if err != nil {
				return err
			}
			sys = f.System()
			f.Start()
			fmt.Fprintf(os.Stderr, "iqpd: follower of %s (local seq %d)\n", leaderAddr, sys.WalSeq())
		} else {
			sys, err = core.OpenDurable(cfg.dbDir, core.DurableOptions{CheckpointBytes: cfg.checkpointBytes})
			if err != nil {
				return err
			}
			if cfg.autoMaintain {
				sys.StartAutoMaintain(induct.Options{Nc: cfg.nc, Workers: cfg.workers})
			}
			if !cfg.noInduce {
				if err := induceAtStartup(sys, cfg); err != nil {
					sys.Close() //ilint:allow errdrop — startup induction already failed; its error is the one to report
					return err
				}
			}
			fmt.Fprintf(os.Stderr, "iqpd: leader %q (seq %d)\n", cfg.nodeID, sys.WalSeq())
		}
		defer func() {
			if cerr := sys.Close(); cerr != nil {
				fmt.Fprintln(os.Stderr, "iqpd: close:", cerr)
			}
		}()

		tracker := replica.NewLeader(sys, replica.LeaderOptions{})
		node, err := replica.NewNode(sys, tracker, f, replica.NodeOptions{
			ID: cfg.nodeID,
			Follower: replica.Options{
				Dir:             cfg.dbDir,
				Leader:          leaderAddr, // overwritten from the configuration on demotion
				CheckpointBytes: cfg.checkpointBytes,
				Logf:            logf,
			},
			Logf: logf,
		})
		if err != nil {
			return err
		}
		defer node.Close()
		opts.Replica = tracker
		opts.LeaderAddrFunc = node.LeaderAddr
		opts.FollowerStatus = node.FollowerStatus

		store := cluster.NewFileStore(cfg.clusterConfig)
		store.WatchInterval = cfg.clusterWatch
		watchStop := make(chan struct{})
		defer close(watchStop)
		go node.Watch(watchStop, store)
	} else if role == cluster.RoleFollower {
		if cfg.dbDir == "" {
			return fmt.Errorf("-role follower requires -db DIR (the replica's WAL and checkpoints live there)")
		}
		if cfg.autoMaintain {
			return fmt.Errorf("-auto-maintain is a write-path worker; followers replay the leader's rule maintenance instead")
		}
		f, err := replica.Open(replica.Options{
			Dir:             cfg.dbDir,
			Leader:          leaderAddr,
			NodeID:          cfg.nodeID,
			CheckpointBytes: cfg.checkpointBytes,
			Logf:            logf,
		})
		if err != nil {
			return err
		}
		f.Start()
		defer func() {
			if cerr := f.Close(); cerr != nil {
				fmt.Fprintln(os.Stderr, "iqpd: close:", cerr)
			}
		}()
		sys = f.System()
		opts.LeaderAddr = leaderAddr
		opts.FollowerStatus = f.Status
		fmt.Fprintf(os.Stderr, "iqpd: follower of %s (local seq %d)\n", leaderAddr, sys.WalSeq())
	} else {
		sys, err = openSystem(cfg)
		if err != nil {
			return err
		}
		defer func() {
			if cerr := sys.Close(); cerr != nil {
				fmt.Fprintln(os.Stderr, "iqpd: close:", cerr)
			}
		}()
		if cfg.autoMaintain {
			sys.StartAutoMaintain(induct.Options{Nc: cfg.nc, Workers: cfg.workers})
		}
		if !cfg.noInduce {
			if err := induceAtStartup(sys, cfg); err != nil {
				return err
			}
		}
	}

	srv := server.New(sys, opts)
	httpSrv := &http.Server{
		Addr:              cfg.addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "iqpd: serving %d relations on %s\n", sys.Catalog().Len(), cfg.addr)
		errc <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		stop()
		fmt.Fprintln(os.Stderr, "iqpd: shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			return fmt.Errorf("shutdown: %w", err)
		}
		if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		return nil
	}
}

func induceAtStartup(sys *core.System, cfg config) error {
	start := time.Now()
	set, err := sys.Induce(induct.Options{Nc: cfg.nc, Workers: cfg.workers})
	if err != nil {
		return fmt.Errorf("startup induction: %w", err)
	}
	fmt.Fprintf(os.Stderr, "iqpd: induced %d rules in %v (version %d)\n",
		set.Len(), time.Since(start).Round(time.Millisecond), sys.Version())
	return nil
}

func openSystem(cfg config) (*core.System, error) {
	switch {
	case cfg.wal:
		if cfg.dbDir == "" {
			return nil, fmt.Errorf("-wal requires -db DIR (the WAL lives beside the database directory)")
		}
		return core.OpenDurable(cfg.dbDir, core.DurableOptions{CheckpointBytes: cfg.checkpointBytes})
	case cfg.dbDir != "":
		return core.Open(cfg.dbDir)
	case cfg.fleet:
		cat := synth.Fleet(synth.FleetConfig{ClassesPerType: 4, ShipsPerClass: 3, Seed: 1})
		d, err := synth.FleetDictionary(cat)
		if err != nil {
			return nil, err
		}
		return core.New(cat, d), nil
	default:
		cat := shipdb.Catalog()
		d, err := shipdb.Dictionary(cat)
		if err != nil {
			return nil, err
		}
		return core.New(cat, d), nil
	}
}
