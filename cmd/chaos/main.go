// Command chaos runs the seeded crash-recovery harness against the
// durable write path: a loop of mutate → inject disk death → kill →
// reopen, asserting after every cycle that acknowledged batches are
// recoverable and no serving rule is contradicted by the data.
//
// Usage:
//
//	chaos                      # 200 cycles, seed 1
//	chaos -iters 1000 -seed 7  # longer run, different fault schedule
//	chaos -v                   # per-run progress
//
// The run is fully deterministic for a given seed; on failure the seed
// is printed so the exact cycle can be replayed under a debugger. Exit
// status 1 means an invariant was violated.
package main

import (
	"flag"
	"fmt"
	"os"

	"intensional/internal/chaos"
)

func main() {
	os.Exit(run())
}

func run() int {
	iters := flag.Int("iters", 200, "crash-recovery cycles to run")
	seed := flag.Int64("seed", 1, "random seed; the same seed replays the same run")
	checkpointBytes := flag.Int64("checkpoint-bytes", 32<<10, "auto-checkpoint threshold for the system under test")
	verbose := flag.Bool("v", false, "print progress")
	flag.Parse()

	dir, err := os.MkdirTemp("", "chaos-*")
	if err != nil {
		fmt.Fprintf(os.Stderr, "chaos: %v\n", err)
		return 1
	}
	defer os.RemoveAll(dir) //ilint:allow errdrop — best-effort temp cleanup on exit

	logf := func(string, ...any) {}
	if *verbose {
		logf = func(format string, args ...any) {
			fmt.Printf(format+"\n", args...)
		}
	}
	rep, err := chaos.Run(dir+"/db", chaos.Config{
		Iters:           *iters,
		Seed:            *seed,
		CheckpointBytes: *checkpointBytes,
		Logf:            logf,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "chaos: harness error (seed %d): %v\n", *seed, err)
		return 1
	}
	if len(rep.Violations) > 0 {
		fmt.Fprintf(os.Stderr, "chaos: FAILED after %d cycles with seed %d — reproduce with: chaos -iters %d -seed %d\n",
			rep.Iters, *seed, *iters, *seed)
		for _, v := range rep.Violations {
			fmt.Fprintf(os.Stderr, "  %s\n", v)
		}
		return 1
	}
	fmt.Printf("chaos: OK — %d cycles (seed %d), %d mutations acknowledged, %d refused by injected faults, %d checkpoints, 0 violations\n",
		rep.Iters, *seed, rep.Acked, rep.Refused, rep.Checkpoint)
	return 0
}
