// Command chaos runs the seeded crash-recovery harness against the
// durable write path: a loop of mutate → inject disk death → kill →
// reopen, asserting after every cycle that acknowledged batches are
// recoverable and no serving rule is contradicted by the data.
//
// With -scenario it instead runs one of the replication scenarios:
//
//	replica    a leader streams its WAL to a follower while the harness
//	           kills and restarts the follower mid-stream, partitions
//	           the network, and forces leader checkpoints
//	bootstrap  every cycle a fresh follower's chunked snapshot download
//	           loses its link at a seeded chunk index; the transfer must
//	           resume from the spool (verified chunks never re-fetched)
//	           and recover byte-identically
//	reconfig   a two-node cluster serves a failover-aware client while
//	           the configuration store swaps the leader under load —
//	           fenced demotion, drained promotion, no restarts, no lost
//	           writes
//	slowlink   the leader throttles snapshot chunks; the bootstrap must
//	           complete, converge, and take at least the time the rate
//	           limit implies
//
// After every cycle the follower must reconverge with no acknowledged
// write lost, no contradicted rule served, and byte-identical answers.
//
// Usage:
//
//	chaos                          # 200 crash-recovery cycles, seed 1
//	chaos -iters 1000 -seed 7      # longer run, different fault schedule
//	chaos -scenario replica        # replication kill/partition scenario
//	chaos -scenario bootstrap      # mid-bootstrap partition + resume
//	chaos -scenario reconfig       # live leader swaps under load
//	chaos -scenario slowlink       # throttled snapshot transfer
//	chaos -v                       # per-run progress
//
// The run is fully deterministic for a given seed; on failure the seed
// is printed so the exact cycle can be replayed under a debugger. Exit
// status 1 means an invariant was violated.
package main

import (
	"flag"
	"fmt"
	"os"

	"intensional/internal/chaos"
)

func main() {
	os.Exit(run())
}

func run() int {
	iters := flag.Int("iters", 200, "crash-recovery cycles to run")
	seed := flag.Int64("seed", 1, "random seed; the same seed replays the same run")
	checkpointBytes := flag.Int64("checkpoint-bytes", 32<<10, "auto-checkpoint threshold for the system under test")
	replicaRun := flag.Bool("replica", false, "shorthand for -scenario replica")
	scenario := flag.String("scenario", "", "crash (default), replica, bootstrap, reconfig, or slowlink")
	verbose := flag.Bool("v", false, "print progress")
	flag.Parse()
	if *replicaRun && *scenario == "" {
		*scenario = "replica"
	}

	dir, err := os.MkdirTemp("", "chaos-*")
	if err != nil {
		fmt.Fprintf(os.Stderr, "chaos: %v\n", err)
		return 1
	}
	defer os.RemoveAll(dir) //ilint:allow errdrop — best-effort temp cleanup on exit

	logf := func(string, ...any) {}
	if *verbose {
		logf = func(format string, args ...any) {
			fmt.Printf(format+"\n", args...)
		}
	}
	rcfg := chaos.ReplicaConfig{Iters: *iters, Seed: *seed, Logf: logf}
	var rep *chaos.Report
	switch *scenario {
	case "", "crash":
		rep, err = chaos.Run(dir+"/db", chaos.Config{
			Iters:           *iters,
			Seed:            *seed,
			CheckpointBytes: *checkpointBytes,
			Logf:            logf,
		})
	case "replica":
		rep, err = chaos.RunReplica(dir+"/db", rcfg)
	case "bootstrap":
		rep, err = chaos.RunReplicaBootstrap(dir+"/db", rcfg)
	case "reconfig":
		rep, err = chaos.RunReplicaReconfig(dir+"/db", rcfg)
	case "slowlink":
		rep, err = chaos.RunReplicaSlowLink(dir+"/db", rcfg)
	default:
		fmt.Fprintf(os.Stderr, "chaos: unknown -scenario %q (want crash, replica, bootstrap, reconfig, or slowlink)\n", *scenario)
		return 1
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "chaos: harness error (seed %d): %v\n", *seed, err)
		return 1
	}
	repro := fmt.Sprintf("chaos -iters %d -seed %d", *iters, *seed)
	if *scenario != "" && *scenario != "crash" {
		repro = fmt.Sprintf("chaos -scenario %s %s", *scenario, repro[len("chaos "):])
	}
	if len(rep.Violations) > 0 {
		fmt.Fprintf(os.Stderr, "chaos: FAILED after %d cycles with seed %d — reproduce with: %s\n",
			rep.Iters, *seed, repro)
		for _, v := range rep.Violations {
			fmt.Fprintf(os.Stderr, "  %s\n", v)
		}
		return 1
	}
	switch *scenario {
	case "", "crash":
		fmt.Printf("chaos: OK — %d cycles (seed %d), %d mutations acknowledged, %d refused by injected faults, %d checkpoints, 0 violations\n",
			rep.Iters, *seed, rep.Acked, rep.Refused, rep.Checkpoint)
	case "replica":
		fmt.Printf("chaos: OK — %d replica cycles (seed %d), %d writes acknowledged, %d follower kills, %d partitions, %d leader checkpoints, 0 violations\n",
			rep.Iters, *seed, rep.Acked, rep.Kills, rep.Partitions, rep.Checkpoint)
	case "bootstrap":
		fmt.Printf("chaos: OK — %d bootstrap cycles (seed %d), %d writes acknowledged, %d mid-transfer drops resumed, 0 violations\n",
			rep.Iters, *seed, rep.Acked, rep.Partitions)
	case "reconfig":
		fmt.Printf("chaos: OK — %d reconfig cycles (seed %d), %d writes acknowledged, %d live handovers, 0 violations\n",
			rep.Iters, *seed, rep.Acked, rep.Handovers)
	case "slowlink":
		fmt.Printf("chaos: OK — %d throttled bootstraps (seed %d), %d writes acknowledged, 0 violations\n",
			rep.Iters, *seed, rep.Acked)
	}
	return 0
}
