// Command chaos runs the seeded crash-recovery harness against the
// durable write path: a loop of mutate → inject disk death → kill →
// reopen, asserting after every cycle that acknowledged batches are
// recoverable and no serving rule is contradicted by the data.
//
// With -replica it instead runs the replication chaos scenario: a
// leader streams its WAL to a follower over loopback HTTP while the
// harness kills and restarts the follower mid-stream, partitions the
// network, and forces leader checkpoints; after every cycle the
// follower must reconverge with no acknowledged write lost, no
// contradicted rule served, and byte-identical answers.
//
// Usage:
//
//	chaos                      # 200 cycles, seed 1
//	chaos -iters 1000 -seed 7  # longer run, different fault schedule
//	chaos -replica -iters 50   # replication kill/partition scenario
//	chaos -v                   # per-run progress
//
// The run is fully deterministic for a given seed; on failure the seed
// is printed so the exact cycle can be replayed under a debugger. Exit
// status 1 means an invariant was violated.
package main

import (
	"flag"
	"fmt"
	"os"

	"intensional/internal/chaos"
)

func main() {
	os.Exit(run())
}

func run() int {
	iters := flag.Int("iters", 200, "crash-recovery cycles to run")
	seed := flag.Int64("seed", 1, "random seed; the same seed replays the same run")
	checkpointBytes := flag.Int64("checkpoint-bytes", 32<<10, "auto-checkpoint threshold for the system under test")
	replicaRun := flag.Bool("replica", false, "run the replication kill/partition scenario instead of the crash-recovery loop")
	verbose := flag.Bool("v", false, "print progress")
	flag.Parse()

	dir, err := os.MkdirTemp("", "chaos-*")
	if err != nil {
		fmt.Fprintf(os.Stderr, "chaos: %v\n", err)
		return 1
	}
	defer os.RemoveAll(dir) //ilint:allow errdrop — best-effort temp cleanup on exit

	logf := func(string, ...any) {}
	if *verbose {
		logf = func(format string, args ...any) {
			fmt.Printf(format+"\n", args...)
		}
	}
	var rep *chaos.Report
	if *replicaRun {
		rep, err = chaos.RunReplica(dir+"/db", chaos.ReplicaConfig{
			Iters: *iters,
			Seed:  *seed,
			Logf:  logf,
		})
	} else {
		rep, err = chaos.Run(dir+"/db", chaos.Config{
			Iters:           *iters,
			Seed:            *seed,
			CheckpointBytes: *checkpointBytes,
			Logf:            logf,
		})
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "chaos: harness error (seed %d): %v\n", *seed, err)
		return 1
	}
	repro := fmt.Sprintf("chaos -iters %d -seed %d", *iters, *seed)
	if *replicaRun {
		repro = "chaos -replica " + repro[len("chaos "):]
	}
	if len(rep.Violations) > 0 {
		fmt.Fprintf(os.Stderr, "chaos: FAILED after %d cycles with seed %d — reproduce with: %s\n",
			rep.Iters, *seed, repro)
		for _, v := range rep.Violations {
			fmt.Fprintf(os.Stderr, "  %s\n", v)
		}
		return 1
	}
	if *replicaRun {
		fmt.Printf("chaos: OK — %d replica cycles (seed %d), %d writes acknowledged, %d follower kills, %d partitions, %d leader checkpoints, 0 violations\n",
			rep.Iters, *seed, rep.Acked, rep.Kills, rep.Partitions, rep.Checkpoint)
		return 0
	}
	fmt.Printf("chaos: OK — %d cycles (seed %d), %d mutations acknowledged, %d refused by injected faults, %d checkpoints, 0 violations\n",
		rep.Iters, *seed, rep.Acked, rep.Refused, rep.Checkpoint)
	return 0
}
