// Command experiments regenerates the paper's tables, figures, and
// examples (E1–E8) and the ablation studies (A1–A3). See DESIGN.md for
// the per-experiment index.
//
// Usage:
//
//	experiments            # run everything
//	experiments -e E1      # run one experiment
//	experiments -list      # list experiment IDs
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"intensional/internal/experiments"
)

func main() {
	exp := flag.String("e", "", "experiment ID to run (default: all)")
	list := flag.Bool("list", false, "list experiments and exit")
	outFile := flag.String("o", "", "write the report to this file instead of stdout")
	flag.Parse()

	if *list {
		for _, id := range experiments.All() {
			fmt.Printf("%-4s %s\n", id, experiments.Title(id))
		}
		return
	}
	out := io.Writer(os.Stdout)
	closeOut := func() error { return nil }
	if *outFile != "" {
		f, err := os.Create(*outFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		out = f
		closeOut = f.Close
	}
	var err error
	if *exp == "" {
		err = experiments.RunAll(out)
	} else {
		err = experiments.Run(*exp, out)
	}
	// A failed close loses buffered report output; surface it unless the
	// run itself already failed.
	if cerr := closeOut(); cerr != nil && err == nil {
		err = cerr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}
