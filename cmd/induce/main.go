// Command induce runs the Inductive Learning Subsystem in batch: it
// loads a database, induces the rule base, prints it, and optionally
// saves the database back with its rule relations.
//
// Usage:
//
//	induce                    # ship test bed, Nc=2
//	induce -nc 3              # pruning threshold
//	induce -fraction 0.1      # threshold as a fraction of relation size
//	induce -workers 8         # induction parallelism (0 = GOMAXPROCS, 1 = serial)
//	induce -db DIR -save DIR  # open / save a database directory
package main

import (
	"flag"
	"fmt"
	"os"

	"intensional/internal/core"
	"intensional/internal/induct"
	"intensional/internal/shipdb"
)

func main() {
	dbDir := flag.String("db", "", "open a saved database directory (default: ship test bed)")
	nc := flag.Int("nc", 2, "absolute pruning threshold Nc")
	fraction := flag.Float64("fraction", 0, "pruning threshold as a fraction of relation size")
	workers := flag.Int("workers", 0, "induction worker goroutines (0 = GOMAXPROCS, 1 = serial); the rule set is identical at every setting")
	save := flag.String("save", "", "save the database with its rule relations to this directory")
	flag.Parse()

	var sys *core.System
	var err error
	if *dbDir != "" {
		sys, err = core.Open(*dbDir)
	} else {
		cat := shipdb.Catalog()
		if d, derr := shipdb.Dictionary(cat); derr != nil {
			err = derr
		} else {
			sys = core.New(cat, d)
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "induce:", err)
		os.Exit(1)
	}

	set, err := sys.Induce(induct.Options{Nc: *nc, NcFraction: *fraction, Workers: *workers})
	if err != nil {
		fmt.Fprintln(os.Stderr, "induce:", err)
		os.Exit(1)
	}
	fmt.Printf("induced %d rules (Nc=%d, fraction=%g):\n\n", set.Len(), *nc, *fraction)
	for _, r := range set.Rules() {
		fmt.Printf("R%-3d %-70s (support %d)\n", r.ID, r.String(), r.Support)
	}
	if *save != "" {
		if err := sys.Save(*save); err != nil {
			fmt.Fprintln(os.Stderr, "induce: save:", err)
			os.Exit(1)
		}
		fmt.Printf("\nsaved database, dictionary, and rule relations to %s\n", *save)
	}
}
